"""Atomic file writes and inter-process locks for the catalog's on-disk state.

Every file the catalog owns — record texts, the JSON index shards, pickled
checkpoints — is written with the same discipline: the content goes to a
temporary file in the destination directory, is flushed and fsynced, and is
then moved over the destination with :func:`os.replace`, after which the
*parent directory* is fsynced too.  On POSIX the replace is atomic, so a
reader (or a crash) never observes a half-written file; the directory fsync
makes the rename itself durable — without it a crash shortly after the
replace can roll the directory entry back and silently drop the new version
even though the write "succeeded".

:class:`FileLock` is the companion primitive for *multi-process* writers: an
advisory ``flock``-based exclusive lock on a dedicated lock file.  The
catalog takes one per index shard around its read-modify-write cycle, so two
service processes appending versions to the same shard serialize instead of
losing updates.  On platforms without ``fcntl`` the lock degrades to a
process-local no-op (single-writer semantics, as before).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional, Union

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["atomic_write_bytes", "atomic_write_text", "FileLock", "fsync_directory"]


def fsync_directory(directory: Union[str, Path]) -> None:
    """Fsync a directory so a just-completed rename inside it is durable.

    Best-effort: some platforms/filesystems refuse to fsync directories
    (Windows has no directory handles to fsync at all); those refusals are
    swallowed — the write is still atomic, just not crash-durable beyond
    what the OS already guarantees.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically and durably replace ``path`` with ``data``.

    Parent directories are created; the temp file is fsynced before the
    rename and the parent directory after it, so a crash at any point leaves
    either the complete old content or the complete new content.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # The temp file must live on the same filesystem as the destination for
    # os.replace to be atomic, hence dir=parent rather than the default tmpdir.
    fd, temp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
        fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with UTF-8 encoded ``text``."""
    atomic_write_bytes(path, text.encode("utf-8"))


class FileLock:
    """An advisory, exclusive, inter-process lock on one lock file.

    Usable as a context manager::

        with FileLock(root / "index" / "shard-03.lock"):
            ...read-modify-write the shard...

    The lock is held by an open file descriptor, so it is released on process
    death (including SIGKILL) — a crashed writer never wedges the catalog.
    Within one process, two threads locking the same path through *separate*
    ``FileLock`` instances also exclude each other (each instance opens its
    own file description).  Instances are not reentrant and not shared
    between threads.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fd: Optional[int] = None

    def acquire(self) -> "FileLock":
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is already held by this instance")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except BaseException:
                os.close(fd)
                raise
        self._fd = fd
        return self

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "held" if self._fd is not None else "free"
        return f"<FileLock {str(self.path)!r} ({state})>"
