"""Atomic file writes and inter-process locks for the catalog's on-disk state.

Every file the catalog owns — record texts, the JSON index shards, pickled
checkpoints — is written with the same discipline: the content goes to a
temporary file in the destination directory, is flushed and fsynced, and is
then moved over the destination with :func:`os.replace`, after which the
*parent directory* is fsynced too.  On POSIX the replace is atomic, so a
reader (or a crash) never observes a half-written file; the directory fsync
makes the rename itself durable — without it a crash shortly after the
replace can roll the directory entry back and silently drop the new version
even though the write "succeeded".

:class:`FileLock` is the companion primitive for *multi-process* writers: an
advisory ``flock``-based exclusive lock on a dedicated lock file.  The
catalog takes one per index shard around its read-modify-write cycle, so two
service processes appending versions to the same shard serialize instead of
losing updates.  With a ``timeout`` the lock is taken non-blocking
(``LOCK_NB``) under a jittered retry loop and raises
:class:`~repro.exceptions.CatalogLockTimeoutError` on expiry, so a stalled
peer degrades to a classified error instead of wedging the caller forever.
On platforms without ``fcntl`` the lock degrades to a process-local no-op
(single-writer semantics, as before).

Both primitives are instrumented with :mod:`repro.faults` points
(``storage.write.*``, ``storage.fsync``, ``catalog.lock.acquire``), so every
durability claim in this file is exercised by the chaos suite under
replayable fault schedules rather than asserted on faith.
"""

from __future__ import annotations

import errno
import os
import random
import tempfile
import time
from pathlib import Path
from typing import Optional, Union

from repro import faults, obs
from repro.exceptions import CatalogLockTimeoutError

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["atomic_write_bytes", "atomic_write_text", "FileLock", "fsync_directory"]


def fsync_directory(directory: Union[str, Path]) -> None:
    """Fsync a directory so a just-completed rename inside it is durable.

    Best-effort: some platforms/filesystems refuse to fsync directories
    (Windows has no directory handles to fsync at all); those refusals are
    swallowed — the write is still atomic, just not crash-durable beyond
    what the OS already guarantees.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically and durably replace ``path`` with ``data``.

    Parent directories are created; the temp file is fsynced before the
    rename and the parent directory after it, so a crash at any point leaves
    either the complete old content or the complete new content.

    Fault points: ``storage.write.begin`` (transient ``EIO`` / slow I/O
    before anything touches disk), ``storage.write.torn`` (a prefix of the
    data lands in the temp file and the write dies — the destination must
    stay untouched), ``storage.fsync`` (the data fsync fails or stalls), and
    ``storage.write.after_rename`` (crash in the classic window after
    ``os.replace`` but before the directory fsync).
    """
    path = Path(path)
    # Spans the full durable cycle (temp write, fsync, rename, dir fsync);
    # a no-op unless the enclosing request is traced.
    with obs.span("storage.write", file=path.name):
        faults.fire("storage.write.begin", path=str(path))
        path.parent.mkdir(parents=True, exist_ok=True)
        # The temp file must live on the same filesystem as the destination for
        # os.replace to be atomic, hence dir=parent rather than the default tmpdir.
        fd, temp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
        try:
            torn = faults.torn_data("storage.write.torn", data)
            with os.fdopen(fd, "wb") as handle:
                if torn is not None:
                    # A torn write: some bytes land, then the writer dies.  The
                    # destination is untouched because the rename never happens.
                    handle.write(torn)
                    handle.flush()
                    raise OSError(errno.EIO, f"injected torn write to {path}")
                handle.write(data)
                handle.flush()
                faults.fire("storage.fsync", path=str(path))
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
            faults.fire("storage.write.after_rename", path=str(path))
            fsync_directory(path.parent)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with UTF-8 encoded ``text``."""
    atomic_write_bytes(path, text.encode("utf-8"))


#: Bounds of the jittered poll while waiting for a contended lock.
_LOCK_POLL_MIN_SECONDS = 0.001
_LOCK_POLL_MAX_SECONDS = 0.05


class FileLock:
    """An advisory, exclusive, inter-process lock on one lock file.

    Usable as a context manager::

        with FileLock(root / "index" / "shard-03.lock", timeout=30.0):
            ...read-modify-write the shard...

    The lock is held by an open file descriptor, so it is released on process
    death (including SIGKILL) — a crashed writer never wedges the catalog.
    Within one process, two threads locking the same path through *separate*
    ``FileLock`` instances also exclude each other (each instance opens its
    own file description).  Instances are not reentrant and not shared
    between threads.

    ``timeout=None`` blocks indefinitely (the pre-timeout behaviour); with a
    timeout the lock is polled non-blocking under jittered exponential
    backoff and :class:`~repro.exceptions.CatalogLockTimeoutError` is raised
    on expiry.
    """

    def __init__(self, path: Union[str, Path], timeout: Optional[float] = None):
        if timeout is not None and timeout < 0:
            raise ValueError("timeout must be non-negative")
        self.path = Path(path)
        self.timeout = timeout
        self._fd: Optional[int] = None

    def acquire(self, timeout: Optional[float] = None) -> "FileLock":
        """Take the lock (``timeout`` overrides the instance default)."""
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is already held by this instance")
        budget = timeout if timeout is not None else self.timeout
        self.path.parent.mkdir(parents=True, exist_ok=True)
        faults.fire("catalog.lock.acquire", path=str(self.path))
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            try:
                if budget is None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                else:
                    self._acquire_with_timeout(fd, budget)
            except BaseException:
                os.close(fd)
                raise
        self._fd = fd
        return self

    def _acquire_with_timeout(self, fd: int, budget: float) -> None:
        """Poll ``LOCK_EX | LOCK_NB`` with jittered backoff until ``budget`` runs out."""
        deadline = time.monotonic() + budget
        pause = _LOCK_POLL_MIN_SECONDS
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError as exc:
                if exc.errno not in (errno.EAGAIN, errno.EWOULDBLOCK, errno.EACCES):
                    raise
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CatalogLockTimeoutError(
                    f"could not lock {self.path} within {budget} seconds "
                    "(held by a live process)"
                )
            # Full jitter keeps a herd of blocked writers from polling in
            # lockstep; the pause grows toward the cap but never overshoots
            # the deadline.
            sleep_for = min(pause * (0.5 + 0.5 * random.random()), remaining)
            time.sleep(sleep_for)
            pause = min(pause * 2.0, _LOCK_POLL_MAX_SECONDS)

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "held" if self._fd is not None else "free"
        return f"<FileLock {str(self.path)!r} ({state})>"
