"""Atomic file writes for the catalog's on-disk state.

Every file the catalog owns — record texts, the JSON index, pickled
checkpoints — is written with the same discipline: the content goes to a
temporary file in the destination directory, is flushed and fsynced, and is
then moved over the destination with :func:`os.replace`.  On POSIX the
replace is atomic, so a reader (or a crash) never observes a half-written
file: it sees either the old content or the new content, nothing in between.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (parent dirs are created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # The temp file must live on the same filesystem as the destination for
    # os.replace to be atomic, hence dir=parent rather than the default tmpdir.
    fd, temp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with UTF-8 encoded ``text``."""
    atomic_write_bytes(path, text.encode("utf-8"))
