"""Lease-based cross-process work claims: exclusive while alive, stealable when dead.

The composition service deduplicates concurrent identical requests *within*
one process by coalescing them onto a shared in-flight future.  Across
processes that table is invisible, so two service instances fed the same
request would both burn the CPU to compose it.  :class:`LeaseTable` extends
the claim across processes with the weakest primitive that works: a **lease**
— a small JSON file per claimed key recording who owns the claim and when it
expires.

The protocol:

* :meth:`acquire` takes the claim if the key is unclaimed, expired, or
  already ours; a *live* claim by another owner is respected (``None``).
* a background heartbeat (:meth:`start_heartbeat`, interval ``ttl/3``)
  renews every held lease, so a healthy owner keeps its claims indefinitely;
* an owner that dies — SIGKILL included — simply stops renewing, and after
  ``ttl_seconds`` any peer's :meth:`acquire` **takes the lease over** (counted
  in ``takeovers``); nothing needs to detect the death or clean up;
* :meth:`wait_acquire` polls with jitter until the claim is won, raising
  :class:`~repro.exceptions.LeaseUnavailableError` only when a live peer held
  the key for the whole wait budget.

Every read-modify-write of a lease file happens under a per-key
:class:`~repro.catalog.storage.FileLock`, so two processes deciding "that
lease is expired, it's mine now" serialize and exactly one wins.  Lease
*state* transitions are therefore atomic, while the guarantee is
intentionally time-bounded: mutual exclusion holds **while the lease is
live**.  The service layers its own idempotence on top (results are
content-addressed; duplicated work after a takeover is wasted CPU, never a
wrong answer), which is what makes a lease — rather than a consensus
protocol — sufficient here.

Expiry is compared against ``time.time()`` on the assumption that every
contender shares one machine clock (the catalog lives on one filesystem, so
this holds).  Corrupt lease files are treated as absent — a torn write of a
claim file costs at most one duplicated composition.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro import faults
from repro.catalog.storage import FileLock, atomic_write_text
from repro.exceptions import LeaseUnavailableError

__all__ = ["Lease", "LeaseTable", "DEFAULT_LEASE_TTL_SECONDS"]

#: Default time a claim survives without renewal before peers may steal it.
DEFAULT_LEASE_TTL_SECONDS = 30.0

#: Bounds of the jittered poll inside :meth:`LeaseTable.wait_acquire`.
_WAIT_POLL_MIN_SECONDS = 0.005
_WAIT_POLL_MAX_SECONDS = 0.1

#: Lease-file locks protect one tiny read-modify-write; a holder that keeps
#: one for 5 seconds is wedged, and waiting longer would only spread the wedge.
_LEASE_LOCK_TIMEOUT_SECONDS = 5.0


@dataclass(frozen=True)
class Lease:
    """One claim as read from disk: who owns ``key`` and until when."""

    key: str
    owner: str
    acquired_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


def default_owner_id() -> str:
    """A process-unique owner id: ``hostname:pid:nonce``.

    The nonce guards against pid reuse — a recycled pid on the same host must
    not inherit the dead process's claims.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


class LeaseTable:
    """Cross-process claims on string keys, stored as files in one directory.

    Parameters
    ----------
    directory:
        Where lease files live (created if missing).  All contending
        processes must point at the same directory — the service uses
        ``<catalog root>/leases``.
    owner:
        This process's identity in lease files; defaults to
        :func:`default_owner_id`.  Two ``LeaseTable`` instances with the same
        owner string are the same claimant.
    ttl_seconds:
        How long a claim survives without renewal.  The heartbeat renews at
        ``ttl/3``, so a lease dies only after three consecutive missed
        heartbeats — or a dead process.
    clock:
        Injectable time source (``time.time``); tests use it to age leases
        without sleeping.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        owner: Optional[str] = None,
        ttl_seconds: float = DEFAULT_LEASE_TTL_SECONDS,
        clock: Callable[[], float] = time.time,
    ):
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.owner = owner or default_owner_id()
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._mutex = threading.Lock()
        self._held: Dict[str, Lease] = {}
        self._heartbeat: Optional[threading.Thread] = None
        self._heartbeat_stop = threading.Event()
        # Counters (under _mutex).
        self._acquired = 0
        self._released = 0
        self._takeovers = 0
        self._contested = 0
        self._renewals = 0
        self._lost = 0
        self._heartbeat_failures = 0
        self._heartbeat_consecutive_failures = 0

    # -- file layout -----------------------------------------------------------------

    def _digest(self, key: str) -> str:
        return blake2b(key.encode("utf-8"), digest_size=8).hexdigest()

    def _lease_path(self, key: str) -> Path:
        return self.directory / (self._digest(key) + ".lease")

    def _lock_path(self, key: str) -> Path:
        return self.directory / (self._digest(key) + ".lock")

    def _read(self, key: str) -> Optional[Lease]:
        """The lease on disk for ``key``, or ``None`` (corrupt files are absent)."""
        try:
            raw = self._lease_path(key).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            data = json.loads(raw)
            return Lease(
                key=str(data["key"]),
                owner=str(data["owner"]),
                acquired_at=float(data["acquired_at"]),
                expires_at=float(data["expires_at"]),
            )
        except (ValueError, KeyError, TypeError):
            # A torn/corrupt claim file is an absent claim: the worst case is
            # one duplicated composition, never a wedged key.
            return None

    def _write(self, lease: Lease) -> None:
        faults.fire("lease.write", key=lease.key, owner=lease.owner)
        atomic_write_text(
            self._lease_path(lease.key),
            json.dumps(
                {
                    "key": lease.key,
                    "owner": lease.owner,
                    "acquired_at": lease.acquired_at,
                    "expires_at": lease.expires_at,
                }
            ),
        )

    # -- claim lifecycle -------------------------------------------------------------

    def acquire(self, key: str) -> Optional[Lease]:
        """Claim ``key``: a :class:`Lease` on success, ``None`` if a live peer owns it.

        Succeeds when the key is unclaimed, claimed by us (renewing the
        claim), or claimed by a peer whose lease has **expired** — the stale
        lease is taken over and counted.  The decision and the write happen
        under the per-key file lock, so concurrent takeover attempts
        serialize and exactly one process wins.
        """
        lock = FileLock(self._lock_path(key), timeout=_LEASE_LOCK_TIMEOUT_SECONDS)
        with lock:
            now = self._clock()
            current = self._read(key)
            takeover = False
            if current is not None and current.owner != self.owner:
                if not current.expired(now):
                    with self._mutex:
                        self._contested += 1
                    return None
                takeover = True
            lease = Lease(
                key=key,
                owner=self.owner,
                acquired_at=now,
                expires_at=now + self.ttl_seconds,
            )
            self._write(lease)
        with self._mutex:
            self._held[key] = lease
            self._acquired += 1
            if takeover:
                self._takeovers += 1
        return lease

    def wait_acquire(
        self,
        key: str,
        timeout: float,
        poll_seconds: Optional[float] = None,
    ) -> Lease:
        """Claim ``key``, polling until the live holder releases, dies, or expires.

        Raises :class:`~repro.exceptions.LeaseUnavailableError` when a live
        peer renewed the claim past the whole ``timeout``.  The poll is
        jittered so a herd of waiters does not stampede the lease file.
        """
        if timeout < 0:
            raise ValueError("timeout must be non-negative")
        deadline = time.monotonic() + timeout
        pause = poll_seconds if poll_seconds is not None else _WAIT_POLL_MIN_SECONDS
        while True:
            lease = self.acquire(key)
            if lease is not None:
                return lease
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise LeaseUnavailableError(
                    f"lease on {key!r} held by a live peer for {timeout} seconds"
                )
            sleep_for = min(pause * (0.5 + 0.5 * random.random()), remaining)
            time.sleep(sleep_for)
            if poll_seconds is None:
                pause = min(pause * 2.0, _WAIT_POLL_MAX_SECONDS)

    def renew(self, key: str) -> bool:
        """Extend our claim on ``key``; ``False`` if the lease was lost.

        A lease is *lost* when the file on disk no longer names us as owner —
        a peer took it over after we missed enough heartbeats (e.g. this
        process was stopped under a debugger past the TTL).  The key is
        dropped from the held table so the caller knows its exclusivity is
        gone.
        """
        with self._mutex:
            if key not in self._held:
                return False
        lock = FileLock(self._lock_path(key), timeout=_LEASE_LOCK_TIMEOUT_SECONDS)
        with lock:
            current = self._read(key)
            if current is None or current.owner != self.owner:
                with self._mutex:
                    self._held.pop(key, None)
                    self._lost += 1
                return False
            now = self._clock()
            lease = Lease(
                key=key,
                owner=self.owner,
                acquired_at=current.acquired_at,
                expires_at=now + self.ttl_seconds,
            )
            self._write(lease)
        with self._mutex:
            self._held[key] = lease
            self._renewals += 1
        return True

    def renew_all(self) -> int:
        """Renew every held lease (the heartbeat body); returns renewals done."""
        with self._mutex:
            keys = list(self._held)
        return sum(1 for key in keys if self.renew(key))

    def release(self, key: str) -> None:
        """Drop our claim on ``key`` (no-op if we do not hold it).

        The lease file is deleted only if it still names us — releasing after
        a takeover must not destroy the new owner's claim.
        """
        with self._mutex:
            held = self._held.pop(key, None)
        if held is None:
            return
        lock = FileLock(self._lock_path(key), timeout=_LEASE_LOCK_TIMEOUT_SECONDS)
        try:
            with lock:
                current = self._read(key)
                if current is not None and current.owner == self.owner:
                    try:
                        self._lease_path(key).unlink()
                    except OSError:
                        pass
        finally:
            with self._mutex:
                self._released += 1

    def release_all(self) -> None:
        """Release every held lease (shutdown path)."""
        with self._mutex:
            keys = list(self._held)
        for key in keys:
            self.release(key)

    # -- heartbeat -------------------------------------------------------------------

    def start_heartbeat(self, interval_seconds: Optional[float] = None) -> None:
        """Renew held leases every ``interval`` (default ``ttl/3``) until stopped."""
        if self._heartbeat is not None:
            return
        interval = (
            interval_seconds if interval_seconds is not None else self.ttl_seconds / 3.0
        )
        self._heartbeat_stop.clear()

        def beat() -> None:
            while not self._heartbeat_stop.wait(interval):
                try:
                    self.renew_all()
                except Exception:  # noqa: BLE001 - heartbeat must never die
                    # A failed renewal round (disk hiccup, injected fault) is
                    # survivable: the next round retries, and a lease only
                    # expires after ttl — three missed rounds.  Counted, not
                    # swallowed: /metrics reports the tally and /healthz
                    # flags a heartbeat that keeps failing.
                    with self._mutex:
                        self._heartbeat_failures += 1
                        self._heartbeat_consecutive_failures += 1
                else:
                    with self._mutex:
                        self._heartbeat_consecutive_failures = 0

        self._heartbeat = threading.Thread(
            target=beat, name="repro-lease-heartbeat", daemon=True
        )
        self._heartbeat.start()

    def stop_heartbeat(self) -> None:
        thread, self._heartbeat = self._heartbeat, None
        if thread is None:
            return
        self._heartbeat_stop.set()
        thread.join(timeout=5.0)

    # -- introspection ---------------------------------------------------------------

    def held(self) -> Dict[str, Lease]:
        """The leases this table currently believes it holds (a copy)."""
        with self._mutex:
            return dict(self._held)

    def peek(self, key: str) -> Optional[Lease]:
        """The lease on disk for ``key`` regardless of owner (no lock taken)."""
        return self._read(key)

    def stats(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "held": len(self._held),
                "acquired": self._acquired,
                "released": self._released,
                "takeovers": self._takeovers,
                "contested": self._contested,
                "renewals": self._renewals,
                "lost": self._lost,
                "heartbeat_failures": self._heartbeat_failures,
                "heartbeat_consecutive_failures": self._heartbeat_consecutive_failures,
            }

    def __repr__(self) -> str:
        with self._mutex:
            held = len(self._held)
        return f"<LeaseTable {str(self.directory)!r} owner={self.owner!r} held={held}>"
