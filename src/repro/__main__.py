"""``python -m repro`` — the command-line face of the catalog and service.

Subcommands::

    repro catalog add FILE [FILE ...]    ingest record files (kind auto-detected)
    repro catalog list                   list stored entries (latest versions)
    repro catalog show KIND NAME         print a stored record text
    repro catalog gc                     bound disk usage (checkpoints, results)
    repro compose [FILE]                 compose a problem/chain record file or
                                         a stored catalog entry (--name/--kind)
    repro serve                          start the HTTP composition service
    repro serve --follow TARGET          start as a replication follower that
                                         tails TARGET (a primary's catalog root
                                         or its http:// URL) and mirrors it
    repro serve --follow T --election    also run leader election: self-promote
                                         (with a fresh fencing epoch) when the
                                         primary goes silent — no operator call
    repro route --backend URL ...        start the health-routing front tier
                                         over one primary and its followers
    repro metrics URL                    fetch and pretty-print a running
                                         service's /metrics (and, on a router,
                                         /router/status)
    repro trace FILE [FILE ...]          merge trace JSONL sinks (router,
                                         primary, followers) into one tree per
                                         trace id; --verify asserts every tree
                                         is complete and orphan-free

Every subcommand operates on one catalog root directory (``--root``,
defaulting to ``$REPRO_CATALOG_ROOT`` or ``./repro-catalog``).  ``compose``
threads the catalog's *persistent* checkpoint store through chained
compositions, so recomposing a stored chain after a process restart replays
only the hops that changed — run ``repro compose --kind chain --name X``
twice and compare the ``reused hops`` line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mapping catalog and composition service (VLDB 2006 reproduction).",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="catalog root directory (default: $REPRO_CATALOG_ROOT or ./repro-catalog)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    catalog = commands.add_parser("catalog", help="inspect and grow the mapping catalog")
    catalog_commands = catalog.add_subparsers(dest="catalog_command", required=True)

    add = catalog_commands.add_parser("add", help="ingest record files into the catalog")
    add.add_argument("files", nargs="+", metavar="FILE", help="record text files")
    add.add_argument("--name", help="store under this name (default: the record's # name:)")
    add.add_argument("--kind", help="force a record kind instead of auto-detection")

    listing = catalog_commands.add_parser("list", help="list stored entries")
    listing.add_argument("--kind", help="only this kind")
    listing.add_argument("--json", action="store_true", help="machine-readable output")

    show = catalog_commands.add_parser("show", help="print one stored record")
    show.add_argument("kind", help="schema | mapping | chain | problem | result")
    show.add_argument("name")
    show.add_argument("--version", type=int, help="a specific version (default: latest)")

    gc = catalog_commands.add_parser(
        "gc", help="garbage-collect checkpoints and old result versions"
    )
    gc.add_argument(
        "--max-checkpoint-files", type=int, default=None, metavar="N",
        help="keep at most N checkpoint files (least recently used evicted first)",
    )
    gc.add_argument(
        "--checkpoint-max-age", type=float, default=None, metavar="SECONDS",
        help="evict checkpoints not used for this many seconds",
    )
    gc.add_argument(
        "--result-max-age", type=float, default=None, metavar="SECONDS",
        help="prune stored result versions older than this (latest always kept)",
    )
    gc.add_argument(
        "--keep-result-versions", type=int, default=None, metavar="N",
        help="always retain the newest N versions of each result (default 1)",
    )
    gc.add_argument(
        "--chain-max-age", type=float, default=None, metavar="SECONDS",
        help="prune stored chain versions older than this (delta bases that "
        "newer versions still reference are never evicted)",
    )
    gc.add_argument(
        "--keep-chain-versions", type=int, default=None, metavar="N",
        help="always retain the newest N versions of each chain (default 1)",
    )
    gc.add_argument(
        "--journal-max-segments", type=int, default=None, metavar="N",
        help="keep at most N replication-journal segments per shard",
    )
    gc.add_argument(
        "--journal-max-age", type=float, default=None, metavar="SECONDS",
        help="drop journal segments not written to for this long",
    )
    gc.add_argument(
        "--grace", type=float, default=0.0, metavar="SECONDS",
        help="never evict checkpoints/results used or written this recently",
    )
    gc.add_argument(
        "--dry-run", action="store_true", help="report what would be removed only"
    )
    gc.add_argument("--json", action="store_true", help="machine-readable report")

    compose = commands.add_parser(
        "compose", help="compose a record file or a stored catalog entry"
    )
    compose.add_argument(
        "file", nargs="?", metavar="FILE", help="a problem or chain record file"
    )
    compose.add_argument("--name", help="compose a stored catalog entry instead of a file")
    compose.add_argument(
        "--kind", choices=("problem", "chain"), default="problem",
        help="kind of the stored entry named by --name (default: problem)",
    )
    compose.add_argument("--version", type=int, help="catalog version (default: latest)")
    compose.add_argument(
        "--order", choices=("fixed", "cost"), default="fixed",
        help="elimination order: the paper's fixed order or the cost-guided planner",
    )
    compose.add_argument("--store", metavar="NAME", help="store the result in the catalog")

    serve = commands.add_parser("serve", help="start the HTTP composition service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8075)
    serve.add_argument(
        "--backend", default="auto", choices=("auto", "serial", "thread", "process"),
        help="micro-batch execution backend",
    )
    serve.add_argument("--max-workers", type=int, default=None)
    serve.add_argument("--micro-batch-size", type=int, default=16)
    serve.add_argument("--micro-batch-wait", type=float, default=0.002, metavar="SECONDS")
    serve.add_argument("--max-pending", type=int, default=1024)
    serve.add_argument(
        "--admission", choices=("reject", "block"), default="reject",
        help="past --max-pending: reject with 429, or block until space frees",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="with --admission block: how long a request may wait for queue space",
    )
    serve.add_argument("--timeout", type=float, default=None, metavar="SECONDS")
    serve.add_argument(
        "--gc-interval", type=float, default=None, metavar="SECONDS",
        help="run a catalog GC sweep this often in the background",
    )
    serve.add_argument(
        "--gc-max-checkpoint-files", type=int, default=None, metavar="N",
        help="GC sweep policy: keep at most N checkpoint files",
    )
    serve.add_argument(
        "--gc-checkpoint-max-age", type=float, default=None, metavar="SECONDS",
        help="GC sweep policy: evict checkpoints unused for this long",
    )
    serve.add_argument(
        "--gc-result-max-age", type=float, default=None, metavar="SECONDS",
        help="GC sweep policy: prune result versions older than this",
    )
    serve.add_argument(
        "--gc-grace", type=float, default=5.0, metavar="SECONDS",
        help="GC sweeps never evict entries used/written this recently (default 5)",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="claim each request across processes with leases of this TTL "
        "(enables cross-process dedup; unset disables)",
    )
    serve.add_argument(
        "--lease-wait", type=float, default=None, metavar="SECONDS",
        help="wait this long for a peer's live claim before composing anyway "
        "(default: 4x the TTL)",
    )
    serve.add_argument(
        "--follow", metavar="TARGET", default=None,
        help="run as a replication follower of TARGET: a primary's catalog "
        "root directory or its http(s):// base URL (tails the journal, "
        "mirrors every entry, serves reads; POST /admin/promote promotes)",
    )
    serve.add_argument(
        "--follow-poll", type=float, default=0.2, metavar="SECONDS",
        help="how often a follower polls its source's journal (default 0.2)",
    )
    serve.add_argument(
        "--election", nargs="?", const="", default=None, metavar="DIR",
        help="run lease-based leader election: a follower self-promotes when "
        "the primary goes silent; a primary holds the leader lease.  DIR is "
        "the shared election directory (default: <root>/election)",
    )
    serve.add_argument(
        "--election-timeout", type=float, default=5.0, metavar="SECONDS",
        help="primary silence threshold before candidates race to promote "
        "(default 5.0)",
    )
    serve.add_argument(
        "--ack-level", choices=("journal", "replica"), default="journal",
        help="write acks: 'journal' after the local WAL fsync (default), "
        "'replica' once a follower confirms the entry applied (degrades to "
        "202 + x-repro-ack-pending past the ack timeout)",
    )
    serve.add_argument(
        "--replica-ack-timeout", type=float, default=2.0, metavar="SECONDS",
        help="with --ack-level replica: how long a write waits for a "
        "follower's confirmation (default 2.0)",
    )
    serve.add_argument("--verbose", action="store_true", help="log every request")
    serve.add_argument(
        "--access-log", metavar="FILE", default=None,
        help="append one JSONL access record per request (method, path, "
        "status, duration, trace id) to FILE; off by default",
    )
    serve.add_argument(
        "--slow-trace", type=float, default=None, metavar="SECONDS",
        help="dump the full span tree of any request slower than this to "
        "stderr (also counted in tracing.slow_requests)",
    )
    serve.add_argument(
        "--trace-log", metavar="FILE", default=None,
        help="append every recorded span to FILE as JSONL (default: "
        "$REPRO_TRACE_LOG); merge sinks later with `repro trace`",
    )

    router = commands.add_parser(
        "route", help="start the health-routing front tier over service backends"
    )
    router.add_argument(
        "--backend", action="append", required=True, metavar="URL", dest="backends",
        help="a backend service base URL (repeat for each primary/follower)",
    )
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=8076)
    router.add_argument(
        "--health-interval", type=float, default=0.5, metavar="SECONDS",
        help="how often each backend's /healthz is polled (default 0.5)",
    )
    router.add_argument(
        "--min-consecutive-ok", type=int, default=2, metavar="N",
        help="flap damping: healthy polls in a row a recovering backend needs "
        "before re-entering rotation (default 2)",
    )
    router.add_argument("--verbose", action="store_true", help="log every request")
    router.add_argument(
        "--trace-log", metavar="FILE", default=None,
        help="append every recorded span to FILE as JSONL (default: "
        "$REPRO_TRACE_LOG); merge sinks later with `repro trace`",
    )

    metrics = commands.add_parser(
        "metrics", help="fetch and pretty-print a running service's metrics"
    )
    metrics.add_argument("url", metavar="URL", help="service or router base URL")
    metrics.add_argument(
        "--prometheus", action="store_true",
        help="fetch the Prometheus text exposition instead of JSON",
    )
    metrics.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-request HTTP timeout (default 5.0)",
    )

    trace = commands.add_parser(
        "trace", help="merge per-process trace JSONL sinks into trees"
    )
    trace.add_argument(
        "files", nargs="+", metavar="FILE",
        help="trace sink files (REPRO_TRACE_LOG / --trace-log output) from "
        "router, primary, and follower processes",
    )
    trace.add_argument("--trace-id", default=None, help="show only this trace")
    trace.add_argument(
        "--verify", action="store_true",
        help="exit 1 unless every merged trace tree is orphan-free",
    )
    trace.add_argument(
        "--require", action="append", default=None, metavar="SPAN",
        help="with --verify: at least one trace must contain ALL of these "
        "span names (repeatable)",
    )
    trace.add_argument("--json", action="store_true", help="machine-readable output")

    return parser


def _catalog_root(args) -> Path:
    import os

    if args.root:
        return Path(args.root)
    return Path(os.environ.get("REPRO_CATALOG_ROOT", "repro-catalog"))


def _open_catalog(args):
    from repro.catalog import MappingCatalog

    return MappingCatalog(_catalog_root(args))


def _cmd_catalog_add(args) -> int:
    catalog = _open_catalog(args)
    for file in args.files:
        text = Path(file).read_text(encoding="utf-8")
        entry = catalog.add_text(text, name=args.name, kind=args.kind)
        print(f"{entry.kind}/{entry.name} v{entry.version}  {entry.fingerprint[:12]}  {file}")
    return 0


def _cmd_catalog_list(args) -> int:
    catalog = _open_catalog(args)
    entries = catalog.entries(args.kind)
    if args.json:
        payload = [
            {
                "kind": entry.kind,
                "name": entry.name,
                "version": entry.version,
                "fingerprint": entry.fingerprint,
                "created_at": entry.created_at,
            }
            for entry in entries
        ]
        print(json.dumps(payload, indent=2))
        return 0
    if not entries:
        print("catalog is empty", file=sys.stderr)
        return 0
    width = max(len(f"{entry.kind}/{entry.name}") for entry in entries)
    for entry in entries:
        label = f"{entry.kind}/{entry.name}"
        print(f"{label:<{width}}  v{entry.version}  {entry.fingerprint[:12]}  {entry.created_at}")
    return 0


def _cmd_catalog_show(args) -> int:
    catalog = _open_catalog(args)
    sys.stdout.write(catalog.text(args.kind, args.name, args.version))
    return 0


def _cmd_catalog_gc(args) -> int:
    catalog = _open_catalog(args)
    report = catalog.gc(
        checkpoint_max_files=args.max_checkpoint_files,
        checkpoint_max_age_seconds=args.checkpoint_max_age,
        result_max_age_seconds=args.result_max_age,
        result_keep_versions=args.keep_result_versions,
        chain_max_age_seconds=args.chain_max_age,
        chain_keep_versions=args.keep_chain_versions,
        journal_max_segments=args.journal_max_segments,
        journal_max_age_seconds=args.journal_max_age,
        grace_seconds=args.grace,
        dry_run=args.dry_run,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    verb = "would remove" if args.dry_run else "removed"
    for label, key in (
        ("checkpoints", "checkpoints"),
        ("results", "results"),
        ("chains", "chains"),
        ("journal", "journal"),
    ):
        section = report[key]
        print(
            f"{label + ':':<13}{verb} {section['removed']}, "
            f"retained {section['retained']} (examined {section['examined']})"
        )
    return 0


def _composer_config(order: str):
    from repro.compose.config import ComposerConfig

    return ComposerConfig.cost_guided() if order == "cost" else ComposerConfig()


def _cmd_compose(args) -> int:
    from repro.compose.composer import compose
    from repro.engine.chain import compose_chain
    from repro.textio.format import problem_from_text
    from repro.textio.records import chain_from_text, detect_kind, result_to_text

    catalog = _open_catalog(args)
    config = _composer_config(args.order)

    if args.name:
        kind = args.kind
        payload = (
            catalog.get_chain(args.name, args.version)
            if kind == "chain"
            else catalog.get_problem(args.name, args.version)
        )
    elif args.file:
        text = Path(args.file).read_text(encoding="utf-8")
        kind = detect_kind(text)
        if kind == "chain":
            payload = chain_from_text(text)
        elif kind == "problem":
            payload = problem_from_text(text)
        else:
            print(f"error: cannot compose a {kind!r} record", file=sys.stderr)
            return 1
    else:
        print("error: pass a FILE or --name", file=sys.stderr)
        return 1

    if kind == "chain":
        chain_result = compose_chain(payload, config, checkpoints=catalog.checkpoints)
        print(chain_result.summary(), file=sys.stderr)
        print(
            f"reused hops: {chain_result.reused_hops}/{len(chain_result.hops)} "
            "(persistent checkpoints)",
            file=sys.stderr,
        )
        composed = chain_result.to_mapping_with_residue()
        if args.store:
            entry = catalog.put_mapping(args.store, composed)
            print(f"stored mapping/{entry.name} v{entry.version}", file=sys.stderr)
        from repro.textio.records import mapping_to_text

        sys.stdout.write(mapping_to_text(composed, name=args.store or ""))
        return 0

    result = compose(payload, config)
    print(result.summary(), file=sys.stderr)
    if args.store:
        entry = catalog.put_result(args.store, result)
        print(f"stored result/{entry.name} v{entry.version}", file=sys.stderr)
    sys.stdout.write(result_to_text(result, name=args.store or ""))
    return 0


def _configure_tracing(default_service: str, trace_log: Optional[str]) -> None:
    """Point the process trace recorder at its sink before serving starts.

    The CLI flag wins over ``$REPRO_TRACE_LOG``; the service label defaults
    to ``$REPRO_TRACE_SERVICE`` so drill harnesses can name each process.
    """
    import os

    from repro import obs

    service = os.environ.get(obs.SERVICE_ENV_VAR) or default_service
    obs.configure(service=service, log_path=trace_log)


def _cmd_serve(args) -> int:
    from repro.service import (
        CompositionService,
        LeaderElector,
        ReplicationFollower,
        ServiceConfig,
        ServiceHTTPServer,
        open_source,
    )

    _configure_tracing(f"serve:{args.port}", args.trace_log)
    catalog = _open_catalog(args)
    service = CompositionService(
        catalog,
        ServiceConfig(
            max_pending=args.max_pending,
            admission=args.admission,
            deadline_seconds=args.deadline,
            micro_batch_size=args.micro_batch_size,
            micro_batch_wait_seconds=args.micro_batch_wait,
            backend=args.backend,
            max_workers=args.max_workers,
            timeout_seconds=args.timeout,
            gc_interval_seconds=args.gc_interval,
            gc_checkpoint_max_files=args.gc_max_checkpoint_files,
            gc_checkpoint_max_age_seconds=args.gc_checkpoint_max_age,
            gc_result_max_age_seconds=args.gc_result_max_age,
            gc_grace_seconds=args.gc_grace,
            lease_ttl_seconds=args.lease_ttl,
            lease_wait_seconds=args.lease_wait,
            ack_level=args.ack_level,
            replica_ack_timeout_seconds=args.replica_ack_timeout,
            slow_trace_seconds=args.slow_trace,
        ),
    )
    follower = None
    if args.follow:
        follower = ReplicationFollower(
            catalog,
            open_source(args.follow),
            poll_interval_seconds=args.follow_poll,
        ).start()
    elector = None
    if args.election is not None:
        source_root = None
        primary_url = None
        if args.follow:
            target = str(args.follow)
            if target.startswith(("http://", "https://")):
                primary_url = target
            else:
                source_root = Path(target)
        elector = LeaderElector(
            catalog,
            follower=follower,
            election_dir=Path(args.election) if args.election else None,
            source_root=source_root,
            primary_url=primary_url,
            election_timeout_seconds=args.election_timeout,
        ).start()
    service.start()
    server = ServiceHTTPServer(
        service,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        follower=follower,
        elector=elector,
        access_log=args.access_log,
    )
    host, port = server.address
    print(f"repro composition service on http://{host}:{port}", flush=True)
    print(f"catalog root: {catalog.root}", flush=True)
    if follower is not None:
        print(f"following: {follower.source.origin}", flush=True)
    if elector is not None:
        print(f"election: {elector.leases.directory}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # Release the port before draining: serve_forever closes on clean
        # exits, but a KeyboardInterrupt can land outside its try block, so
        # close here too (idempotent) — otherwise the socket leaks while
        # service.stop() drains the queue.
        server.close()
        if elector is not None:
            elector.stop()
        if follower is not None and not follower.promoted:
            follower.stop()
        service.stop()
    return 0


def _cmd_route(args) -> int:
    from repro.service import RouterHTTPServer

    _configure_tracing(f"router:{args.port}", args.trace_log)
    router = RouterHTTPServer(
        args.backends,
        host=args.host,
        port=args.port,
        health_interval_seconds=args.health_interval,
        min_consecutive_ok=args.min_consecutive_ok,
        verbose=args.verbose,
    )
    host, port = router.address
    print(f"repro router on http://{host}:{port}", flush=True)
    for backend in router.backends:
        print(f"backend: {backend.url}", flush=True)
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        router.close()
    return 0


def _cmd_metrics(args) -> int:
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    base = args.url.rstrip("/")
    if args.prometheus:
        try:
            with urlopen(
                f"{base}/metrics?format=prometheus", timeout=args.timeout
            ) as response:
                sys.stdout.write(response.read().decode("utf-8"))
        except (HTTPError, URLError, OSError) as exc:
            print(f"error: cannot fetch {base}/metrics: {exc}", file=sys.stderr)
            return 1
        return 0
    # A service answers /metrics; a router additionally answers its own
    # /router/status (and proxies /metrics to a backend).  Print whatever
    # the target actually serves.
    printed = False
    for path in ("/metrics", "/router/status"):
        try:
            with urlopen(base + path, timeout=args.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except HTTPError:
            continue
        except (URLError, OSError, ValueError) as exc:
            print(f"error: cannot fetch {base}{path}: {exc}", file=sys.stderr)
            return 1
        print(f"# {path}")
        print(json.dumps(payload, indent=2, sort_keys=True))
        printed = True
    if not printed:
        print(f"error: {base} answers neither /metrics nor /router/status", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    from repro import obs

    spans = obs.load_spans(args.files)
    traces = obs.merge_spans(spans)
    if args.trace_id is not None:
        traces = {k: v for k, v in traces.items() if k == args.trace_id}
        if not traces:
            print(f"error: trace {args.trace_id} not found in the sinks", file=sys.stderr)
            return 1
    if args.verify:
        problems = obs.verify(traces, require=args.require)
        if problems:
            for problem in problems:
                print(f"verify: {problem}", file=sys.stderr)
            print(
                f"verify: FAILED ({len(problems)} problems across "
                f"{len(traces)} traces)",
                file=sys.stderr,
            )
            return 1
        total = sum(len(records) for records in traces.values())
        print(f"verify: ok — {len(traces)} traces, {total} spans, no orphans")
        return 0
    if args.json:
        print(json.dumps(traces, indent=2, sort_keys=True))
        return 0
    if not traces:
        print("no traces in the given sinks", file=sys.stderr)
        return 0
    for trace_id, records in sorted(traces.items()):
        print(obs.format_trace(trace_id, records))
        print()
    return 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "catalog":
            if args.catalog_command == "add":
                return _cmd_catalog_add(args)
            if args.catalog_command == "list":
                return _cmd_catalog_list(args)
            if args.catalog_command == "gc":
                return _cmd_catalog_gc(args)
            return _cmd_catalog_show(args)
        if args.command == "compose":
            return _cmd_compose(args)
        if args.command == "route":
            return _cmd_route(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "trace":
            return _cmd_trace(args)
        return _cmd_serve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
