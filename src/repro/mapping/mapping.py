"""Mappings: binary relations on instances given by (σ_in, σ_out, Σ).

Following Section 2 of the paper, a mapping between schemas ``σ1`` and ``σ2``
is given by a triple ``(σ1, σ2, Σ12)`` where ``Σ12`` is a finite set of
constraints over ``σ1 ∪ σ2``: it relates instance ``A`` of ``σ1`` to instance
``B`` of ``σ2`` whenever the combined database ``(A, B)`` satisfies ``Σ12``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.constraints.constraint import Constraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.constraints.satisfaction import satisfies_all
from repro.exceptions import ConstraintError, SchemaError
from repro.schema.instance import Instance
from repro.schema.signature import RelationSchema, Signature

__all__ = ["Mapping", "identity_mapping"]


@dataclass(frozen=True)
class Mapping:
    """A mapping given by an input signature, an output signature and constraints."""

    input_signature: Signature
    output_signature: Signature
    constraints: ConstraintSet

    def __post_init__(self) -> None:
        if not self.input_signature.is_disjoint_from(self.output_signature):
            shared = self.input_signature.shared_names(self.output_signature)
            raise SchemaError(
                f"input and output signatures must be disjoint; shared relations: {shared}"
            )
        combined = set(self.input_signature.names()) | set(self.output_signature.names())
        for constraint in self.constraints:
            unknown = constraint.relation_names() - combined
            if unknown:
                raise ConstraintError(
                    f"constraint {constraint} mentions relations outside the mapping's "
                    f"signatures: {sorted(unknown)}"
                )

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_constraints(
        cls,
        input_signature: Signature,
        output_signature: Signature,
        constraints: Iterable[Constraint],
    ) -> "Mapping":
        """Build a mapping from any iterable of constraints."""
        return cls(input_signature, output_signature, ConstraintSet(constraints))

    def inverse(self) -> "Mapping":
        """Return the inverse mapping (swap the roles of input and output).

        Because a mapping is just a set of constraints over the combined
        signature, the inverse keeps the constraints and swaps the signatures —
        this is how the schema-reconciliation scenario turns a σ1→σ2 mapping
        into a σ2→σ1 mapping before composing.
        """
        return Mapping(self.output_signature, self.input_signature, self.constraints)

    # -- queries -------------------------------------------------------------------

    @property
    def combined_signature(self) -> Signature:
        """The union σ_in ∪ σ_out the constraints are expressed over."""
        return self.input_signature.union(self.output_signature)

    def operator_count(self) -> int:
        """Size of the mapping, measured as the paper does (total operators)."""
        return self.constraints.operator_count()

    def constraint_count(self) -> int:
        """Number of constraints in the mapping."""
        return len(self.constraints)

    def fingerprint(self) -> bytes:
        """Deterministic content fingerprint of the mapping.

        Combines the (order-sensitive) fingerprints of both signatures and of
        the constraint set, so two mappings fingerprint equal iff they are the
        same composition input: same relations in the same order with the same
        arities and keys, same constraints in the same order.  Stable across
        processes; cached on the (immutable) mapping and — being structural —
        the cache survives pickling.
        """
        try:
            return self._fingerprint
        except AttributeError:
            pass
        from hashlib import blake2b

        from repro.algebra.digest import DIGEST_SIZE

        h = blake2b(digest_size=DIGEST_SIZE)
        h.update(self.input_signature.fingerprint())
        h.update(self.output_signature.fingerprint())
        h.update(self.constraints.fingerprint())
        value = h.digest()
        object.__setattr__(self, "_fingerprint", value)
        return value

    def relates(
        self,
        input_instance: Instance,
        output_instance: Instance,
        extra_domain: Iterable[object] = (),
    ) -> bool:
        """Return ``True`` iff ``⟨input_instance, output_instance⟩`` is in the mapping."""
        combined = input_instance.merged_with(output_instance)
        return satisfies_all(combined, self.constraints, extra_domain=extra_domain)

    def __repr__(self) -> str:
        return (
            f"Mapping({len(self.input_signature)} -> {len(self.output_signature)} relations, "
            f"{len(self.constraints)} constraints)"
        )


def identity_mapping(
    signature: Signature, renamed: Optional[Signature] = None, suffix: str = "_v2"
) -> Mapping:
    """Build the identity mapping from ``signature`` to a renamed copy of it.

    Every relation ``R`` of the input is linked to its copy by an equality
    constraint ``R = R'``.  If ``renamed`` is not supplied, the copy uses the
    same arities and keys with ``suffix`` appended to each name.
    """
    if renamed is None:
        renamed = Signature(
            RelationSchema(schema.name + suffix, schema.arity, schema.key)
            for schema in signature.relations()
        )
    if len(renamed) != len(signature):
        raise SchemaError("renamed signature must have the same number of relations")
    constraints = []
    for old_schema, new_schema in zip(signature.relations(), renamed.relations()):
        if old_schema.arity != new_schema.arity:
            raise SchemaError(
                f"arity mismatch between {old_schema.name!r} and {new_schema.name!r}"
            )
        constraints.append(
            EqualityConstraint(old_schema.to_expression(), new_schema.to_expression())
        )
    return Mapping(signature, renamed, ConstraintSet(constraints))
