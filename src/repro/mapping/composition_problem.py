"""Composition problems: the inputs (and optionally expected outputs) of COMPOSE.

A composition problem packages the three signatures and the two constraint
sets of the paper's problem statement, plus optional metadata used by the
literature test suite (a name, a description, the expected outcome).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import SchemaError
from repro.mapping.mapping import Mapping
from repro.schema.signature import Signature

__all__ = ["CompositionProblem"]


@dataclass(frozen=True)
class CompositionProblem:
    """The inputs of a single mapping-composition task.

    Attributes
    ----------
    sigma1, sigma2, sigma3:
        The three schemas; ``sigma2`` is the intermediate signature whose
        symbols the algorithm tries to eliminate.
    sigma12, sigma23:
        The constraint sets of the two input mappings (over σ1∪σ2 and σ2∪σ3).
    name, description:
        Optional metadata (used by the literature suite and the benchmarks).
    expected_eliminable:
        If known, the σ2 symbols that *can* be eliminated (None = unknown);
        used by tests of problems whose outcome is documented in the literature.
    """

    sigma1: Signature
    sigma2: Signature
    sigma3: Signature
    sigma12: ConstraintSet
    sigma23: ConstraintSet
    name: str = ""
    description: str = ""
    expected_eliminable: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.sigma1.is_disjoint_from(self.sigma2):
            raise SchemaError("σ1 and σ2 must be disjoint")
        if not self.sigma2.is_disjoint_from(self.sigma3):
            raise SchemaError("σ2 and σ3 must be disjoint")
        if not self.sigma1.is_disjoint_from(self.sigma3):
            raise SchemaError("σ1 and σ3 must be disjoint")
        allowed12 = set(self.sigma1.names()) | set(self.sigma2.names())
        allowed23 = set(self.sigma2.names()) | set(self.sigma3.names())
        for constraint in self.sigma12:
            unknown = constraint.relation_names() - allowed12
            if unknown:
                raise SchemaError(
                    f"Σ12 constraint {constraint} mentions relations outside σ1 ∪ σ2: {sorted(unknown)}"
                )
        for constraint in self.sigma23:
            unknown = constraint.relation_names() - allowed23
            if unknown:
                raise SchemaError(
                    f"Σ23 constraint {constraint} mentions relations outside σ2 ∪ σ3: {sorted(unknown)}"
                )

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_mappings(
        cls,
        m12: Mapping,
        m23: Mapping,
        name: str = "",
        description: str = "",
        expected_eliminable: Optional[Tuple[str, ...]] = None,
    ) -> "CompositionProblem":
        """Build a problem from two mappings sharing their middle signature."""
        if m12.output_signature != m23.input_signature:
            raise SchemaError(
                "the output signature of the first mapping must equal the input "
                "signature of the second mapping"
            )
        return cls(
            sigma1=m12.input_signature,
            sigma2=m12.output_signature,
            sigma3=m23.output_signature,
            sigma12=m12.constraints,
            sigma23=m23.constraints,
            name=name,
            description=description,
            expected_eliminable=expected_eliminable,
        )

    # -- queries --------------------------------------------------------------------

    @property
    def all_constraints(self) -> ConstraintSet:
        """The combined constraint set Σ12 ∪ Σ23 the algorithm starts from."""
        return self.sigma12.union(self.sigma23)

    @property
    def combined_signature(self) -> Signature:
        """σ1 ∪ σ2 ∪ σ3."""
        return self.sigma1.union(self.sigma2).union(self.sigma3)

    def intermediate_symbols(self) -> Tuple[str, ...]:
        """The σ2 symbols the algorithm will try to eliminate, in order."""
        return self.sigma2.names()

    def operator_count(self) -> int:
        """Total operators in the input constraints (the paper's size metric)."""
        return self.all_constraints.operator_count()

    def fingerprint(self) -> bytes:
        """Deterministic content fingerprint of the composition inputs.

        Combines the (order-sensitive) fingerprints of the three signatures
        and the two constraint sets — everything :func:`repro.compose.compose`
        reads; the metadata fields (name, description, expected outcome) do
        not affect the composition and are excluded.  Stable across processes
        and cached on the (frozen) problem, like
        :meth:`repro.mapping.mapping.Mapping.fingerprint`; the composition
        service keys its request deduplication on this.
        """
        try:
            return self._fingerprint
        except AttributeError:
            pass
        from hashlib import blake2b

        from repro.algebra.digest import DIGEST_SIZE

        h = blake2b(digest_size=DIGEST_SIZE)
        h.update(self.sigma1.fingerprint())
        h.update(self.sigma2.fingerprint())
        h.update(self.sigma3.fingerprint())
        h.update(self.sigma12.fingerprint())
        h.update(self.sigma23.fingerprint())
        value = h.digest()
        object.__setattr__(self, "_fingerprint", value)
        return value

    def __repr__(self) -> str:
        label = self.name or "composition problem"
        return (
            f"<CompositionProblem {label!r}: |σ1|={len(self.sigma1)}, |σ2|={len(self.sigma2)}, "
            f"|σ3|={len(self.sigma3)}, |Σ12|={len(self.sigma12)}, |Σ23|={len(self.sigma23)}>"
        )
