"""Mappings and composition problems."""

from repro.mapping.mapping import Mapping, identity_mapping
from repro.mapping.composition_problem import CompositionProblem

__all__ = ["Mapping", "identity_mapping", "CompositionProblem"]
