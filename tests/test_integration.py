"""End-to-end integration tests across the whole library."""

from repro import (
    ComposerConfig,
    ConstraintSet,
    Instance,
    Mapping,
    Signature,
    compose,
    compose_mappings,
    parse_constraint,
    satisfies_all,
)
from repro.evolution import SchemaEvolutionSimulator, SimulatorConfig, run_editing_scenario
from repro.mapping.composition_problem import CompositionProblem
from repro.textio.format import problem_from_text, problem_to_text


class TestMoviesEndToEnd:
    """The paper's Example 1, exercised through the public API only."""

    def build(self):
        movies = Signature.from_arities({"Movies": 6})
        five_star = Signature.from_arities({"FiveStarMovies": 3})
        split = Signature.from_arities({"Names": 2, "Years": 2})
        m12 = Mapping(
            movies,
            five_star,
            ConstraintSet(
                [parse_constraint("project[0,1,2](select[#3 = 5](Movies/6)) <= FiveStarMovies/3")]
            ),
        )
        m23 = Mapping(
            five_star,
            split,
            ConstraintSet(
                [
                    parse_constraint("project[0,1](FiveStarMovies/3) <= Names/2"),
                    parse_constraint("project[0,2](FiveStarMovies/3) <= Years/2"),
                ]
            ),
        )
        return m12, m23

    def test_composition_and_data_migration(self):
        m12, m23 = self.build()
        result = compose_mappings(m12, m23)
        assert result.is_complete
        composed = result.to_mapping()

        source = Instance(
            {
                "Movies": {
                    (1, "Heat", 1995, 5, "crime", "Odeon"),
                    (2, "Clue", 1985, 4, "comedy", "Rex"),
                }
            }
        )
        good_target = Instance({"Names": {(1, "Heat")}, "Years": {(1, 1995)}})
        bad_target = Instance({"Names": set(), "Years": set()})
        assert composed.relates(source, good_target)
        assert not composed.relates(source, bad_target)

    def test_composed_mapping_agrees_with_original_pair(self):
        """The composed mapping accepts exactly the pairs the two originals accept jointly."""
        m12, m23 = self.build()
        result = compose_mappings(m12, m23)
        composed = result.to_mapping()

        source = Instance({"Movies": {(1, "Heat", 1995, 5, "crime", "Odeon")}})
        target = Instance({"Names": {(1, "Heat")}, "Years": {(1, 1995)}})
        middle = Instance({"FiveStarMovies": {(1, "Heat", 1995)}})

        # Forward direction of the equivalence: the witness via the middle schema
        # satisfies both original mappings, and the composed mapping accepts the pair.
        assert m12.relates(source, middle)
        assert m23.relates(middle, target)
        assert composed.relates(source, target)

    def test_serialization_roundtrip_of_the_problem(self):
        m12, m23 = self.build()
        problem = CompositionProblem.from_mappings(m12, m23, name="movies")
        text = problem_to_text(problem)
        reparsed = problem_from_text(text)
        assert compose(reparsed).is_complete


class TestSimulatorComposeLoop:
    def test_simulated_edits_compose_and_stay_consistent(self):
        simulator = SchemaEvolutionSimulator(seed=99, config=SimulatorConfig.no_keys())
        schema = simulator.random_schema(6)
        result = run_editing_scenario(
            schema_size=6, num_edits=20, seed=99, simulator=simulator, initial_schema=schema
        )
        # Every symbol of the final accumulated mapping is either an original
        # relation, a current-schema relation, or a recorded leftover.
        allowed = (
            set(result.original_schema.names())
            | set(result.final_schema.names())
            | set(result.leftover_symbols)
        )
        assert result.constraints.relation_names() <= allowed

    def test_all_configurations_run_without_errors(self):
        for composer_config in (
            ComposerConfig.default(),
            ComposerConfig.no_view_unfolding(),
            ComposerConfig.no_right_compose(),
            ComposerConfig.no_left_compose(),
        ):
            result = run_editing_scenario(
                schema_size=5, num_edits=8, seed=7, composer_config=composer_config
            )
            assert len(result.records) == 8


class TestEmptyTargetSatisfaction:
    def test_satisfaction_checking_through_public_api(self):
        constraint = parse_constraint("project[0](R/2) <= S/1")
        instance = Instance({"R": {(1, "a")}, "S": {(1,)}})
        assert satisfies_all(instance, [constraint])
        assert not satisfies_all(Instance({"R": {(1, "a")}, "S": set()}), [constraint])
