"""Tests for the plain-text composition-problem format."""

import pytest

from repro.compose.composer import compose
from repro.exceptions import ParseError
from repro.literature.problems import all_problems, problem_by_name
from repro.textio.format import problem_from_text, problem_to_text, read_problem, write_problem


class TestRoundTrip:
    def test_simple_problem_roundtrip(self):
        problem = problem_by_name("example3_inclusion_chain").problem
        text = problem_to_text(problem)
        parsed = problem_from_text(text)
        assert parsed.sigma1 == problem.sigma1
        assert parsed.sigma2 == problem.sigma2
        assert parsed.sigma3 == problem.sigma3
        assert parsed.sigma12 == problem.sigma12
        assert parsed.sigma23 == problem.sigma23
        assert parsed.name == problem.name

    @pytest.mark.parametrize(
        "name",
        [
            "example1_movies",
            "example5_view_unfolding",
            "glav_chain",
            "vertical_partition_roundtrip",
            "union_split_targets",
            "outerjoin_tolerance",
        ],
    )
    def test_literature_problems_roundtrip(self, name):
        problem = problem_by_name(name).problem
        parsed = problem_from_text(problem_to_text(problem))
        assert parsed.sigma12 == problem.sigma12
        assert parsed.sigma23 == problem.sigma23

    def test_roundtrip_preserves_composition_outcome(self):
        problem = problem_by_name("example1_movies").problem
        parsed = problem_from_text(problem_to_text(problem))
        assert compose(parsed).is_complete == compose(problem).is_complete

    def test_file_io(self, tmp_path):
        problem = problem_by_name("glav_chain").problem
        path = tmp_path / "problem.txt"
        write_problem(problem, path)
        loaded = read_problem(path)
        assert loaded.sigma12 == problem.sigma12

    def test_keys_serialized(self, tmp_path):
        problem = problem_by_name("vertical_partition_roundtrip").problem
        text = problem_to_text(problem)
        parsed = problem_from_text(text)
        assert parsed.sigma1.key_of("R") == problem.sigma1.key_of("R")


class TestErrors:
    def test_unknown_section_rejected(self):
        with pytest.raises(ParseError):
            problem_from_text("[sigma9]\nR/2\n")

    def test_content_outside_section_rejected(self):
        with pytest.raises(ParseError):
            problem_from_text("R/2\n[sigma1]\n")

    def test_bad_relation_declaration_rejected(self):
        with pytest.raises(ParseError):
            problem_from_text("[sigma1]\nR\n[sigma2]\n[sigma3]\n[sigma12]\n[sigma23]\n")

    def test_bad_arity_rejected(self):
        with pytest.raises(ParseError):
            problem_from_text("[sigma1]\nR/x\n[sigma2]\n[sigma3]\n[sigma12]\n[sigma23]\n")

    def test_unexpected_token_in_relation_line(self):
        with pytest.raises(ParseError):
            problem_from_text("[sigma1]\nR/2 foo=1\n[sigma2]\n[sigma3]\n[sigma12]\n[sigma23]\n")

    def test_metadata_parsed_from_comments(self):
        text = (
            "# name: demo\n# description: a demo problem\n"
            "[sigma1]\nR/2\n[sigma2]\nS/2\n[sigma3]\nT/2\n"
            "[sigma12]\nR/2 <= S/2\n[sigma23]\nS/2 <= T/2\n"
        )
        problem = problem_from_text(text)
        assert problem.name == "demo"
        assert problem.description == "a demo problem"
