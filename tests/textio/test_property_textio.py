"""Seeded randomized round-trip property tests for the textio formats.

Every generated signature — random names, arities, ``key=i,j`` annotations —
and every generated metadata pair (``# name:`` / ``# description:``, with
hostile-but-legal content) must survive ``parse(print(x)) == x``, through the
original problem format *and* the extended catalog records (schemas,
mappings, chains, results).  All randomness flows through seeds, so failures
are reproducible.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping
from repro.schema.signature import RelationSchema, Signature
from repro.textio.format import problem_from_text, problem_to_text
from repro.textio.records import (
    chain_from_text,
    chain_to_text,
    mapping_from_text,
    mapping_to_text,
    parse_record,
    result_from_text,
    result_to_text,
    signature_from_text,
    signature_to_text,
)

NUM_CASES = 25


def _random_signature(rng: random.Random, prefix: str, count: int) -> Signature:
    relations = []
    for index in range(count):
        arity = rng.randint(1, 6)
        key = None
        if rng.random() < 0.5:
            # Random key subsets exercise every shape of the key=i,j suffix:
            # singletons, runs, gaps, the full width.
            width = rng.randint(1, arity)
            key = tuple(sorted(rng.sample(range(arity), width)))
        relations.append(RelationSchema(f"{prefix}{index}", arity, key))
    return Signature(relations)


def _projected(rng: random.Random, schema: RelationSchema, width: int):
    from repro.algebra.builders import project

    expression = schema.to_expression()
    if width == schema.arity and rng.random() < 0.5:
        return expression  # bare relation reference for variety
    columns = sorted(rng.sample(range(schema.arity), width))
    return project(expression, columns)


def _random_constraints(
    rng: random.Random, left_signature: Signature, right_signature: Signature
) -> ConstraintSet:
    """Random containments/equalities between projections of the two sides."""
    constraints = []
    for left_schema in left_signature.relations():
        right_schema = rng.choice(right_signature.relations())
        width = rng.randint(1, min(left_schema.arity, right_schema.arity))
        left_expr = _projected(rng, left_schema, width)
        right_expr = _projected(rng, right_schema, width)
        kind = EqualityConstraint if rng.random() < 0.3 else ContainmentConstraint
        constraints.append(kind(left_expr, right_expr))
    return ConstraintSet(constraints)


def _random_mapping(rng: random.Random, prefix: str) -> Mapping:
    input_signature = _random_signature(rng, f"{prefix}In", rng.randint(1, 4))
    output_signature = _random_signature(rng, f"{prefix}Out", rng.randint(1, 4))
    return Mapping(
        input_signature,
        output_signature,
        _random_constraints(rng, input_signature, output_signature),
    )


#: Metadata values with hostile-but-legal content: inner '#', ':', section-ish
#: brackets, unicode; single-line and strip-stable (the format's contract).
_METADATA_VALUES = [
    "plain",
    "with spaces and   runs",
    "colons: in # comments [and] brackets",
    "key=0,1 looks like an annotation",
    "unicode σ1→σ3 ünïcode",
]


class TestSignatureProperties:
    @pytest.mark.parametrize("seed", range(NUM_CASES))
    def test_signature_roundtrip(self, seed):
        rng = random.Random(1000 + seed)
        signature = _random_signature(rng, "R", rng.randint(1, 8))
        text = signature_to_text(signature, name=f"sig{seed}")
        parsed = signature_from_text(text)
        assert parsed == signature
        # Keys and order survive exactly.
        assert parsed.names() == signature.names()
        for name in signature.names():
            assert parsed.key_of(name) == signature.key_of(name)

    @pytest.mark.parametrize("value", _METADATA_VALUES)
    def test_metadata_roundtrip(self, value):
        signature = Signature([RelationSchema("R", 2)])
        text = signature_to_text(signature, name="n", description=value)
        record = parse_record(text)
        assert record.description == value
        assert record.name == "n"


class TestProblemFormatProperties:
    @pytest.mark.parametrize("seed", range(NUM_CASES))
    def test_problem_roundtrip_with_keys_and_metadata(self, seed):
        rng = random.Random(2000 + seed)
        sigma1 = _random_signature(rng, "A", rng.randint(1, 3))
        sigma2 = _random_signature(rng, "B", rng.randint(1, 3))
        sigma3 = _random_signature(rng, "C", rng.randint(1, 3))
        problem = CompositionProblem(
            sigma1=sigma1,
            sigma2=sigma2,
            sigma3=sigma3,
            sigma12=_random_constraints(rng, sigma1, sigma2),
            sigma23=_random_constraints(rng, sigma2, sigma3),
            name=f"problem{seed}",
            description=rng.choice(_METADATA_VALUES),
        )
        parsed = problem_from_text(problem_to_text(problem))
        assert parsed.sigma1 == problem.sigma1
        assert parsed.sigma2 == problem.sigma2
        assert parsed.sigma3 == problem.sigma3
        assert parsed.sigma12 == problem.sigma12
        assert parsed.sigma23 == problem.sigma23
        assert parsed.name == problem.name
        assert parsed.description == problem.description
        for signature in (parsed.sigma1, parsed.sigma2, parsed.sigma3):
            for name in signature.names():
                assert signature.key_of(name) == problem.combined_signature.key_of(name)


class TestCatalogRecordProperties:
    @pytest.mark.parametrize("seed", range(NUM_CASES))
    def test_mapping_roundtrip(self, seed):
        rng = random.Random(3000 + seed)
        mapping = _random_mapping(rng, f"M{seed}")
        text = mapping_to_text(
            mapping, name=f"m{seed}", description=rng.choice(_METADATA_VALUES)
        )
        assert mapping_from_text(text) == mapping

    @pytest.mark.parametrize("seed", range(NUM_CASES))
    def test_chain_roundtrip(self, seed):
        from repro.engine.workloads import ChainGrower

        rng = random.Random(4000 + seed)
        chain = tuple(
            ChainGrower(seed=seed, schema_size=rng.randint(2, 5)).grow_many(
                rng.randint(2, 5)
            )
        )
        assert chain_from_text(chain_to_text(chain, name=f"c{seed}")) == chain

    @pytest.mark.parametrize("seed", range(NUM_CASES))
    def test_result_roundtrip(self, seed):
        from repro.compose.composer import compose
        from repro.compose.config import ComposerConfig
        from repro.engine.workloads import generate_chain_problem, pairwise_problems

        config = ComposerConfig.cost_guided() if seed % 2 else ComposerConfig()
        problem = generate_chain_problem(seed, chain_length=3, schema_size=3)
        for pairwise in pairwise_problems(problem):
            result = compose(pairwise, config)
            assert result_from_text(result_to_text(result, name=f"r{seed}")) == result
