"""The unattended kill-and-recover drill: nobody calls ``/admin/promote``.

PR 8's failover drill needed an operator to promote the follower.  This
drill takes the operator away: the primary and the candidate follower each
run a :class:`~repro.service.election.LeaderElector` over a shared election
directory, the primary is SIGKILLed mid-load, and the follower must win the
``leader`` lease race and self-promote **on its own** — within the election
timeout, under seeded lease/journal chaos, losing zero acknowledged writes.

The epilogue resurrects the dead primary over its old (now fenced) root: a
zombie that still thinks it is the leader.  Its writes must come back
``409`` (:class:`~repro.exceptions.StaleEpochError`) — fencing epochs, not
luck, are what prevent split-brain.
"""

import json
import os
import shutil
import time
import urllib.error
import urllib.request

import pytest

from repro import faults, obs
from repro.catalog import MappingCatalog
from repro.engine import compose_chain
from repro.engine.workloads import WorkloadConfig, generate_workload
from repro.textio.records import chain_to_text

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

ELECTION_TIMEOUT = 1.0

_PRIMARY = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import (
    CompositionService, LeaderElector, ServiceConfig, ServiceHTTPServer,
)

catalog = MappingCatalog(sys.argv[1])
elector = LeaderElector(
    catalog, election_dir=sys.argv[2], election_timeout_seconds=float(sys.argv[3])
).start()
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0, elector=elector)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_CANDIDATE = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import (
    CompositionService, LeaderElector, ReplicationFollower, ServiceConfig,
    ServiceHTTPServer, open_source,
)

catalog = MappingCatalog(sys.argv[1])
follower = ReplicationFollower(
    catalog, open_source(sys.argv[2]), poll_interval_seconds=0.05
).start()
elector = LeaderElector(
    catalog,
    follower=follower,
    election_dir=sys.argv[3],
    source_root=sys.argv[2],
    primary_url=sys.argv[4],
    election_timeout_seconds=float(sys.argv[5]),
    health_timeout_seconds=0.5,
).start()
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0, follower=follower, elector=elector)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_ROUTER = """
import sys, time
from repro.service import RouterHTTPServer

router = RouterHTTPServer(
    sys.argv[1:], port=0, health_interval_seconds=0.1, health_timeout_seconds=1.0
).start()
print(f"ready {router.address[1]}", flush=True)
while True:
    time.sleep(1)
"""


def _await_ready(proc, timeout=60):
    line = proc.stdout.readline()
    assert line.startswith("ready "), f"worker did not come up: {line!r}"
    return int(line.split()[1])


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode(), dict(response.headers)


def _post(url, body=b"", timeout=60):
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read().decode(), dict(response.headers)


def _wait_for(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestUnattendedFailoverDrill:
    def test_kill_primary_follower_self_promotes_zero_lost(
        self, tmp_path, run_python, chaos_log_dir
    ):
        primary_root = tmp_path / "primary"
        candidate_root = tmp_path / "candidate"
        election_dir = tmp_path / "election"
        primary_log = chaos_log_dir / "election-primary.jsonl"
        candidate_log = chaos_log_dir / "election-candidate.jsonl"

        # Trace sinks land next to the fault logs so CI uploads them and can
        # reassemble any acknowledged write (and the election transition
        # itself) with ``repro trace --verify``.
        def _trace_env(role):
            return {
                obs.LOG_ENV_VAR: str(chaos_log_dir / f"election-trace-{role}.jsonl"),
                obs.SERVICE_ENV_VAR: role,
            }

        # Chaos on both sides of the failover: the primary's journal appends
        # tear (~10%, bounded; the retry policy heals them, so acknowledged
        # still means journaled), and the candidate's lease writes and
        # election races run slowed — the election must win anyway.
        primary_env = {
            faults.ENV_VAR: (
                f"seed={CHAOS_SEED};journal.append.torn:torn:p=0.1:limit=3"
            ),
            faults.LOG_ENV_VAR: str(primary_log),
            **_trace_env("primary"),
        }
        candidate_env = {
            faults.ENV_VAR: (
                f"seed={CHAOS_SEED};"
                "lease.write:slow:p=0.3:ms=5;"
                "election.acquire:slow:p=0.5:ms=10;"
                "journal.epoch.write:slow:p=0.5:ms=5"
            ),
            faults.LOG_ENV_VAR: str(candidate_log),
            **_trace_env("candidate"),
        }
        procs = []
        try:
            primary = run_python(
                _PRIMARY,
                str(primary_root),
                str(election_dir),
                str(ELECTION_TIMEOUT),
                env_extra=primary_env,
                wait=False,
            )
            procs.append(primary)
            primary_base = f"http://127.0.0.1:{_await_ready(primary)}"

            candidate = run_python(
                _CANDIDATE,
                str(candidate_root),
                str(primary_root),
                str(election_dir),
                primary_base,
                str(ELECTION_TIMEOUT),
                env_extra=candidate_env,
                wait=False,
            )
            procs.append(candidate)
            candidate_base = f"http://127.0.0.1:{_await_ready(candidate)}"

            router = run_python(
                _ROUTER,
                primary_base,
                candidate_base,
                env_extra=_trace_env("router"),
                wait=False,
            )
            procs.append(router)
            router_base = f"http://127.0.0.1:{_await_ready(router)}"

            problems = generate_workload(
                WorkloadConfig(
                    num_problems=7,
                    min_chain_length=3,
                    max_chain_length=4,
                    seed=CHAOS_SEED,
                )
            )

            # Phase 1: load through the router while everything is healthy.
            # The candidate watches a live primary: it must NOT elect.
            acknowledged = []
            for index, problem in enumerate(problems[:4]):
                name = f"drill-{index}"
                status, _, headers = _post(
                    f"{router_base}/compose?store={name}",
                    chain_to_text(problem.mappings).encode(),
                )
                assert status == 200
                if "X-Repro-Store-Dropped" not in headers:
                    acknowledged.append(name)
            assert acknowledged, "no write was acknowledged before the kill"

            _, body, _ = _get(f"{candidate_base}/healthz")
            election = json.loads(body).get("election", {})
            assert election.get("role") == "candidate"
            assert election.get("elections_started") == 0

            # Phase 2: SIGKILL the primary.  Nobody calls /admin/promote —
            # the elector must notice the silence, win the lease race once
            # the dead leader's lease expires, and self-promote.
            killed_at = time.monotonic()
            primary.kill()
            primary.wait(timeout=30)

            def self_promoted():
                try:
                    _, body, _ = _get(f"{candidate_base}/healthz")
                except (urllib.error.HTTPError, urllib.error.URLError, OSError):
                    return False
                health = json.loads(body)
                return health.get("election", {}).get("role") == "leader"

            assert _wait_for(self_promoted), "the follower never self-promoted"
            # Silence detection + lease-expiry wait + race + promotion: a
            # small multiple of the election timeout, never an operator's
            # reaction time.
            assert time.monotonic() - killed_at < 10 * ELECTION_TIMEOUT

            _, body, _ = _get(f"{candidate_base}/healthz")
            health = json.loads(body)
            assert health["role"] == "primary"
            assert health["epoch"] >= 1
            assert health["election"]["elections_won"] == 1

            # The router observes the self-promotion and resumes writes.
            def promoted_visible():
                _, body, _ = _get(f"{router_base}/router/status")
                return any(
                    b["role"] == "primary" and b["healthy"] and b["epoch"] >= 1
                    for b in json.loads(body)["backends"]
                )

            assert _wait_for(promoted_visible)
            for index, problem in enumerate(problems[4:], start=4):
                name = f"drill-{index}"
                status, _, headers = _post(
                    f"{router_base}/compose?store={name}",
                    chain_to_text(problem.mappings).encode(),
                )
                assert status == 200
                assert headers["x-repro-backend"] == candidate_base
                if "X-Repro-Store-Dropped" not in headers:
                    acknowledged.append(name)

            _, body, _ = _get(f"{router_base}/router/status")
            assert json.loads(body)["failovers_observed"] >= 1

            # Phase 3: zero lost versions, fingerprint-identical to a
            # single-process reference composition.
            promoted = MappingCatalog(candidate_root)
            stored = set(promoted.names("mapping"))
            missing = [name for name in acknowledged if name not in stored]
            assert not missing, f"acknowledged writes lost in failover: {missing}"
            for index, problem in enumerate(problems):
                name = f"drill-{index}"
                if name not in acknowledged:
                    continue
                reference = compose_chain(problem.mappings).to_mapping_with_residue()
                assert (
                    promoted.get_mapping(name).fingerprint()
                    == reference.fingerprint()
                ), f"{name} diverged from the single-process reference"

            # Phase 4: resurrect the ex-primary over its fenced root.  The
            # zombie still believes it is a primary — but every write it
            # accepts must be refused with 409 by its own catalog.
            zombie = run_python(
                _PRIMARY,
                str(primary_root),
                str(tmp_path / "zombie-election"),
                str(ELECTION_TIMEOUT),
                wait=False,
            )
            procs.append(zombie)
            zombie_base = f"http://127.0.0.1:{_await_ready(zombie)}"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    f"{zombie_base}/compose?store=zombie-write",
                    chain_to_text(problems[0].mappings).encode(),
                )
            assert excinfo.value.code == 409
            resurrected = MappingCatalog(primary_root)
            assert "zombie-write" not in resurrected.names("mapping")

            # The candidate's lease/election chaos actually fired.
            if candidate_log.exists():
                events = [
                    json.loads(line)
                    for line in candidate_log.read_text().splitlines()
                    if line.strip()
                ]
                assert events, "candidate chaos schedule never fired"
                assert all(
                    e["point"]
                    in ("lease.write", "election.acquire", "journal.epoch.write")
                    for e in events
                )

            # Preserve journal segments next to the fault logs (CI artifacts).
            for label, root in (
                ("primary", primary_root),
                ("candidate", candidate_root),
            ):
                journal = root / "journal"
                if journal.exists():
                    shutil.copytree(
                        journal,
                        chaos_log_dir / f"election-journal-{label}",
                        dirs_exist_ok=True,
                    )
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.communicate()
