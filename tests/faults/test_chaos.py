"""Chaos suite: fault schedules and real crashes against the catalog tier.

Each test pins one durability claim from the failure model:

* a process SIGKILLed mid-``put`` (modelled by ``crash`` at the
  crash-after-rename window) never loses an acknowledged version, and the
  catalog it leaves behind is fully readable;
* a torn write (writer dies mid-``write``) never corrupts the destination —
  the tear hits the temp file, the record either lands whole or not at all;
* two writers racing under a seeded EIO/slow schedule commit every version
  exactly once, contiguously numbered;
* composition outputs are byte-identical with and without faults — the
  robustness layer retries and degrades, it never changes answers;
* while a lease is live, at most one process executes the claimed job;
* every fired fault lands in the ``REPRO_FAULTS_LOG`` audit trail.
"""

import json
import os
import time

import pytest

from repro import faults
from repro.catalog import MappingCatalog
from repro.engine import compose_chain
from repro.engine.workloads import WorkloadConfig, generate_workload
from repro.faults import FaultInjector

_CRASH_EXIT_CODE = 137

#: Schedule seed for the probabilistic tests below.  The assertions hold for
#: any seed (the probabilities only decide *which* calls fault, never whether
#: the invariants may break), so CI sweeps a matrix of seeds to widen
#: coverage while every individual run stays replayable.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))


def _chain(seed=3, length=5):
    problems = generate_workload(
        WorkloadConfig(
            num_problems=1, min_chain_length=length, max_chain_length=length, seed=seed
        )
    )
    return tuple(problems[0].mappings)


#: Appends versions of one mapping name, acknowledging each commit on stdout.
#: The fault schedule comes in via REPRO_FAULTS; a crash clause kills the
#: process mid-stream with no cleanup, exactly like SIGKILL.
_VERSION_WRITER = """
import sys
from repro.catalog import MappingCatalog
from repro.engine.workloads import WorkloadConfig, generate_workload

root, count, seed = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
length = max(3, count)
problems = generate_workload(WorkloadConfig(
    num_problems=1, min_chain_length=length, max_chain_length=length, seed=seed
))
mappings = list(problems[0].mappings)[:count]
catalog = MappingCatalog(root)
for mapping in mappings:
    for attempt in range(5):
        try:
            entry = catalog.put_mapping("m", mapping)
            break
        except OSError:
            if attempt == 4:
                raise
    print(f"committed {entry.version}", flush=True)
"""


class TestCrashMidPut:
    def test_kill_mid_put_loses_no_acknowledged_version(self, tmp_path, run_python):
        root = str(tmp_path / "catalog")
        # Each put performs two atomic writes (record file + index shard):
        # crashing on the 8th rename dies inside the 4th put of 8.
        proc = run_python(
            _VERSION_WRITER,
            root,
            "8",
            "3",
            env_extra={
                faults.ENV_VAR: "storage.write.after_rename:crash:after=7:limit=1"
            },
            wait=False,
        )
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == _CRASH_EXIT_CODE
        acknowledged = [
            int(line.split()[1]) for line in out.splitlines() if line.startswith("committed")
        ]
        assert acknowledged, "the crash fired before any put finished"
        assert len(acknowledged) < 8, "the crash never fired"

        survivor = MappingCatalog(root)
        stored = [entry.version for entry in survivor.versions("mapping", "m")]
        # Every acknowledged version survived, numbering is contiguous, and at
        # most one unacknowledged trailing version exists (crash landed in the
        # window between the index update and the acknowledgement).
        assert set(acknowledged) <= set(stored)
        assert stored == list(range(1, len(stored) + 1))
        assert len(stored) <= len(acknowledged) + 1
        for version in stored:
            assert survivor.get_mapping("m", version=version) is not None
        # The catalog the crash left behind accepts new writes.
        fresh = _chain(seed=9, length=3)
        entry = survivor.put_mapping("m", fresh[0])
        assert entry.version == len(stored) + 1


class TestTornWrites:
    def test_torn_write_never_corrupts_the_destination(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "catalog")
        chain = _chain()
        first = catalog.put_mapping("m", chain[0])
        reference = catalog.text("mapping", "m")

        # Every write tears: the put must fail (retries see the same tear)...
        faults.install(FaultInjector.from_text("storage.write.torn:torn"))
        with pytest.raises(OSError):
            catalog.put_mapping("m", chain[1])
        faults.clear()

        # ...but the destination never saw the torn bytes.
        reopened = MappingCatalog(tmp_path / "catalog")
        assert [e.version for e in reopened.versions("mapping", "m")] == [first.version]
        assert reopened.text("mapping", "m") == reference
        # And the next clean put lands as the next version, no gaps.
        assert reopened.put_mapping("m", chain[1]).version == first.version + 1

    def test_intermittent_tear_is_absorbed_by_retries(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "catalog")
        # Tear every 5th write: a retried attempt advances the call counter,
        # so the retry itself lands off the fault's cadence and succeeds.
        faults.install(FaultInjector.from_text("storage.write.torn:torn:nth=5"))
        for index, mapping in enumerate(_chain(length=6)):
            catalog.put_mapping(f"m{index}", mapping)
        faults.clear()
        assert catalog.retry_stats.snapshot()["transient_errors"] > 0
        reopened = MappingCatalog(tmp_path / "catalog")
        for index in range(6):
            assert reopened.get_mapping(f"m{index}") is not None


class TestConcurrentWritersUnderFaults:
    def test_two_faulty_writers_lose_no_versions(
        self, tmp_path, run_python, chaos_log_dir
    ):
        root = str(tmp_path / "catalog")
        MappingCatalog(root)  # pre-create so both workers join one catalog
        schedule = (
            f"seed={CHAOS_SEED};storage.write.begin:eio:p=0.08;"
            "catalog.shard.read:slow:p=0.05:ms=2;storage.fsync:eio:p=0.04"
        )
        count = 6
        workers = [
            run_python(
                _VERSION_WRITER,
                root,
                str(count),
                str(seed),
                env_extra={
                    faults.ENV_VAR: schedule,
                    faults.LOG_ENV_VAR: str(
                        chaos_log_dir / f"writers-seed{CHAOS_SEED}-w{seed}.jsonl"
                    ),
                },
                wait=False,
            )
            for seed in (21, 22)
        ]
        acknowledged = []
        for worker in workers:
            out, err = worker.communicate(timeout=120)
            assert worker.returncode == 0, f"writer failed:\n{out}\n{err}"
            acknowledged += [
                int(line.split()[1])
                for line in out.splitlines()
                if line.startswith("committed")
            ]

        catalog = MappingCatalog(root)
        stored = [entry.version for entry in catalog.versions("mapping", "m")]
        # 2 x count commits, every version exactly once, contiguous, readable.
        assert sorted(acknowledged) == list(range(1, 2 * count + 1))
        assert stored == list(range(1, 2 * count + 1))
        for version in stored:
            assert catalog.get_mapping("m", version=version) is not None


class TestByteIdenticalOutputs:
    def test_composition_is_byte_identical_under_checkpoint_faults(self, tmp_path):
        chain = _chain(seed=5, length=5)
        reference = compose_chain(chain).constraints.to_text()

        catalog = MappingCatalog(tmp_path / "catalog")
        faults.install(
            FaultInjector.from_text(
                f"seed={CHAOS_SEED + 4};"
                "checkpoint.persist:eio:p=0.4;checkpoint.load:eio:p=0.4;"
                "checkpoint.load:slow:p=0.2:ms=1"
            )
        )
        first = compose_chain(chain, checkpoints=catalog.checkpoints)
        second = compose_chain(chain, checkpoints=catalog.checkpoints)
        faults.clear()
        assert first.constraints.to_text() == reference
        assert second.constraints.to_text() == reference

    def test_catalog_reads_are_byte_identical_under_shard_faults(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "catalog")
        chain = _chain(seed=6, length=4)
        catalog.put_chain("history", chain)
        reference = catalog.text("chain", "history")

        # The index shard is read once and cached, so fault that one read
        # deterministically: the first two attempts fail, the retry policy
        # absorbs both, and the bytes that come back must be unchanged.
        faults.install(FaultInjector.from_text("catalog.shard.read:eio:limit=2"))
        reopened = MappingCatalog(tmp_path / "catalog")
        for _ in range(5):
            assert reopened.text("chain", "history") == reference
            assert reopened.get_chain("history") == chain
        faults.clear()
        assert reopened.retry_stats.snapshot()["transient_errors"] == 2


#: Claims one shared job key, holds it briefly, logs the held interval with
#: an O_APPEND one-line write, releases.  Overlapping intervals in the log
#: would mean two processes ran the "job" at once.
_LEASE_WORKER = """
import os, sys, time
from repro.catalog.leases import LeaseTable

directory, log_path, worker_id = sys.argv[1], sys.argv[2], sys.argv[3]
table = LeaseTable(directory, owner=worker_id, ttl_seconds=10.0)
lease = table.wait_acquire("shared-job", timeout=60.0)
start = time.time()
time.sleep(0.05)
end = time.time()
with open(log_path, "a") as handle:
    handle.write(f"{worker_id} {start:.6f} {end:.6f}\\n")
table.release("shared-job")
print("done", flush=True)
"""


class TestLeaseExclusivity:
    def test_at_most_one_process_holds_the_job_at_a_time(self, tmp_path, run_python):
        lease_dir = str(tmp_path / "leases")
        log_path = tmp_path / "intervals.log"
        workers = [
            run_python(
                _LEASE_WORKER, lease_dir, str(log_path), f"worker-{i}", wait=False
            )
            for i in range(4)
        ]
        for worker in workers:
            out, err = worker.communicate(timeout=120)
            assert worker.returncode == 0, f"lease worker failed:\n{out}\n{err}"

        intervals = []
        for line in log_path.read_text().splitlines():
            _, start, end = line.split()
            intervals.append((float(start), float(end)))
        assert len(intervals) == 4
        intervals.sort()
        for (_, prev_end), (next_start, _) in zip(intervals, intervals[1:]):
            assert next_start >= prev_end, "two workers held the job at once"


class TestAuditTrail:
    def test_fired_faults_are_logged_for_subprocess_runs(self, tmp_path, run_python):
        root = str(tmp_path / "catalog")
        log = tmp_path / "faults.jsonl"
        run_python(
            _VERSION_WRITER,
            root,
            "4",
            "3",
            env_extra={
                faults.ENV_VAR: "storage.write.begin:eio:nth=3:limit=2",
                faults.LOG_ENV_VAR: str(log),
            },
        )
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert len(records) == 2
        assert all(r["point"] == "storage.write.begin" for r in records)
        assert all(r["spec"] == "storage.write.begin:eio" for r in records)
        assert [r["fired"] for r in records] == [1, 2]
        # The faults were survived: every version landed despite them.
        assert len(MappingCatalog(root).versions("mapping", "m")) == 4
