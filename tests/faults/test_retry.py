"""Unit tests for the classified retry policy.

The contract: transient errors retry under jittered bounded backoff,
permanent errors propagate immediately, the original exception always
travels unwrapped, and every decision lands in the stats.
"""

import errno

import pytest

from repro.retry import RetryPolicy, RetryStats, classify_error


def _transient(message="sick disk"):
    return OSError(errno.EIO, message)


def _permanent():
    return OSError(errno.ENOENT, "no such file")


class TestClassification:
    @pytest.mark.parametrize(
        "code", [errno.EIO, errno.EAGAIN, errno.EBUSY, errno.ETIMEDOUT, errno.EINTR]
    )
    def test_transient_errnos(self, code):
        assert classify_error(OSError(code, "x")) == "transient"

    @pytest.mark.parametrize("code", [errno.ENOENT, errno.EACCES, errno.ENOSPC])
    def test_permanent_errnos(self, code):
        assert classify_error(OSError(code, "x")) == "permanent"

    def test_non_oserror_is_permanent(self):
        assert classify_error(ValueError("not I/O")) == "permanent"
        assert classify_error(KeyboardInterrupt()) == "permanent"


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        stats = RetryStats()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise _transient()
            return "ok"

        policy = RetryPolicy(max_attempts=4)
        assert policy.run(flaky, stats=stats, sleep=lambda _: None) == "ok"
        assert len(attempts) == 3
        snapshot = stats.snapshot()
        assert snapshot["operations"] == 1
        assert snapshot["retries"] == 2
        assert snapshot["exhausted"] == 0

    def test_permanent_error_propagates_immediately_unwrapped(self):
        stats = RetryStats()
        original = _permanent()

        def broken():
            raise original

        with pytest.raises(OSError) as excinfo:
            RetryPolicy(max_attempts=5).run(broken, stats=stats, sleep=lambda _: None)
        assert excinfo.value is original
        assert stats.snapshot()["permanent_errors"] == 1
        assert stats.snapshot()["retries"] == 0

    def test_exhaustion_reraises_the_last_transient_error(self):
        stats = RetryStats()
        errors = [_transient(f"attempt {i}") for i in range(3)]
        calls = []

        def failing():
            calls.append(1)
            raise errors[min(len(calls) - 1, 2)]

        with pytest.raises(OSError) as excinfo:
            RetryPolicy(max_attempts=3).run(failing, stats=stats, sleep=lambda _: None)
        assert excinfo.value is errors[2]
        assert len(calls) == 3
        assert stats.snapshot()["exhausted"] == 1

    def test_max_attempts_one_disables_retrying(self):
        calls = []

        def failing():
            calls.append(1)
            raise _transient()

        with pytest.raises(OSError):
            RetryPolicy(max_attempts=1).run(failing, sleep=lambda _: None)
        assert len(calls) == 1

    def test_deadline_stops_retries_early(self):
        # A fake clock that jumps past the deadline after the first failure:
        # read once to arm the deadline, once at the first retry check.
        times = iter([0.0, 10.0])
        calls = []

        def failing():
            calls.append(1)
            raise _transient()

        policy = RetryPolicy(max_attempts=10, deadline_seconds=1.0)
        with pytest.raises(OSError):
            policy.run(failing, sleep=lambda _: None, clock=lambda: next(times))
        assert len(calls) == 1  # the deadline killed attempt 2 before it ran

    def test_backoff_is_exponential_capped_and_jittered(self):
        policy = RetryPolicy(
            base_delay_seconds=0.010, backoff=2.0, max_delay_seconds=0.050
        )
        # Full jitter: uniform in [delay/2, delay].
        assert policy.delay_for(0, rng=lambda: 0.0) == pytest.approx(0.005)
        assert policy.delay_for(0, rng=lambda: 1.0) == pytest.approx(0.010)
        assert policy.delay_for(1, rng=lambda: 1.0) == pytest.approx(0.020)
        assert policy.delay_for(10, rng=lambda: 1.0) == pytest.approx(0.050)  # cap

    def test_slept_time_is_accounted(self):
        stats = RetryStats()
        slept = []

        def failing_once(state=[0]):
            state[0] += 1
            if state[0] == 1:
                raise _transient()
            return "ok"

        RetryPolicy().run(failing_once, stats=stats, sleep=slept.append)
        assert len(slept) == 1
        # The snapshot rounds to microseconds.
        assert stats.snapshot()["backoff_seconds"] == pytest.approx(slept[0], abs=1e-6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_seconds": -1},
            {"backoff": 0.5},
            {"deadline_seconds": 0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
