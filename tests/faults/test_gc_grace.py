"""GC grace-window tests.

The window closes a cross-process race: without it, a sweep in one process
can evict a checkpoint (or result version) that a peer wrote moments ago and
is about to read.  Anything younger than ``grace_seconds`` is exempt from
*every* eviction rule — age, LRU count, and version pruning alike.
"""

import json
import os
import time

import pytest

from repro.__main__ import main
from repro.catalog import MappingCatalog
from repro.compose import compose
from repro.engine import compose_chain
from repro.engine.workloads import WorkloadConfig, generate_workload
from repro.literature.problems import problem_by_name


@pytest.fixture()
def chain():
    problems = generate_workload(
        WorkloadConfig(num_problems=1, min_chain_length=5, max_chain_length=5, seed=3)
    )
    return tuple(problems[0].mappings)


@pytest.fixture()
def catalog(tmp_path, chain):
    catalog = MappingCatalog(tmp_path / "catalog")
    compose_chain(chain, checkpoints=catalog.checkpoints)
    return catalog


def _age_files(paths, seconds):
    stale = time.time() - seconds
    for path in paths:
        os.utime(path, (stale, stale))


class TestCheckpointGrace:
    def test_grace_protects_fresh_checkpoints_from_every_rule(self, catalog):
        hops = catalog.checkpoints.disk_entries()
        assert hops > 0
        # The harshest possible policy — but everything was written just now.
        report = catalog.gc(
            checkpoint_max_files=0,
            checkpoint_max_age_seconds=0.001,
            grace_seconds=60.0,
        )
        assert report["grace_seconds"] == 60.0
        assert report["checkpoints"]["removed"] == 0
        assert catalog.checkpoints.disk_entries() == hops

    def test_zero_grace_restores_unconditional_eviction(self, catalog):
        hops = catalog.checkpoints.disk_entries()
        report = catalog.gc(checkpoint_max_files=0, grace_seconds=0.0)
        assert report["checkpoints"]["removed"] == hops
        assert catalog.checkpoints.disk_entries() == 0

    def test_grace_does_not_shield_genuinely_old_files(self, catalog):
        files = sorted(catalog.checkpoints.directory.glob("*.ckpt"))
        _age_files(files[:2], 7200)
        report = catalog.gc(checkpoint_max_age_seconds=3600, grace_seconds=60.0)
        assert report["checkpoints"]["removed"] == 2
        assert catalog.checkpoints.disk_entries() == len(files) - 2

    def test_max_files_only_dooms_aged_files(self, catalog):
        # 2 aged files, the rest fresh: a bound of 1 may evict only the aged
        # ones, so more than max_files can survive inside the grace window.
        files = sorted(catalog.checkpoints.directory.glob("*.ckpt"))
        _age_files(files[:2], 7200)
        report = catalog.gc(checkpoint_max_files=1, grace_seconds=60.0)
        assert report["checkpoints"]["removed"] == 2
        assert catalog.checkpoints.disk_entries() == len(files) - 2

    def test_negative_grace_is_rejected(self, catalog):
        from repro.exceptions import CatalogError

        with pytest.raises(CatalogError):
            catalog.gc(grace_seconds=-1.0)


class TestResultGrace:
    def test_fresh_result_versions_survive_version_pruning(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "catalog")
        catalog.put_result("r", compose(problem_by_name("example1_movies").problem))
        catalog.put_result("r", compose(problem_by_name("glav_chain").problem))
        report = catalog.gc(result_keep_versions=1, grace_seconds=3600.0)
        assert report["results"]["removed"] == 0
        assert len(catalog.versions("result", "r")) == 2
        # Outside the window the policy applies again.
        report = catalog.gc(result_keep_versions=1, grace_seconds=0.0)
        assert report["results"]["removed"] == 1
        assert [e.version for e in catalog.versions("result", "r")] == [2]


class TestCLIGrace:
    def test_catalog_gc_grace_flag(self, catalog, capsys):
        root = str(catalog.root)
        hops = catalog.checkpoints.disk_entries()
        assert main(["--root", root, "catalog", "gc", "--max-checkpoint-files", "0",
                     "--grace", "60", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["grace_seconds"] == 60.0
        assert report["checkpoints"]["removed"] == 0
        assert MappingCatalog(root).checkpoints.disk_entries() == hops
