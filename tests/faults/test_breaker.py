"""Circuit-breaker tests: state machine first, then graceful degradation.

The degradation contract: a storage tier that keeps failing flips the
service to memory-only serving — requests keep answering correctly, the
skipped writes are counted, ``/healthz`` says ``degraded`` with a reason —
and once storage recovers, a probe closes the breaker and durability
resumes.  No request is ever failed over a cache write.
"""

import pytest

from repro import faults
from repro.catalog import MappingCatalog
from repro.engine import compose_chain
from repro.engine.workloads import WorkloadConfig, generate_workload
from repro.faults import FaultInjector
from repro.service import CompositionService, ServiceConfig
from repro.service.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestStateMachine:
    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_open_blocks_until_recovery_then_probes_once(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 4.9
        assert not breaker.allow()
        clock.now = 5.1
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=1.0, clock=clock)
        breaker.record_failure(OSError("disk on fire"))
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_and_rearms_the_timer(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=5.0, clock=clock)
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now = 10.0  # only 4s since the re-open: still closed to traffic
        assert not breaker.allow()
        clock.now = 11.1
        assert breaker.allow()

    def test_snapshot_reports_state_and_last_failure(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(OSError(5, "injected"))
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "open"
        assert snapshot["open_count"] == 1
        assert "injected" in snapshot["last_failure"]
        assert snapshot["opened_age_seconds"] >= 0

    @pytest.mark.parametrize(
        "kwargs", [{"failure_threshold": 0}, {"recovery_seconds": -1}]
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


@pytest.fixture()
def chains():
    problems = generate_workload(
        WorkloadConfig(num_problems=6, min_chain_length=3, max_chain_length=3, seed=11)
    )
    return [tuple(problem.mappings) for problem in problems]


class TestGracefulDegradation:
    def test_persist_failures_open_the_breaker_and_service_stays_correct(
        self, tmp_path, chains
    ):
        catalog = MappingCatalog(tmp_path / "cat")
        config = ServiceConfig(
            micro_batch_wait_seconds=0.0,
            breaker_failure_threshold=3,
            breaker_recovery_seconds=3600.0,  # stays open for the whole test
        )
        # Every checkpoint persist fails even after retries: the breaker must
        # open, the service must keep serving, and no request may fail.
        faults.install(FaultInjector.from_text("checkpoint.persist:eio"))
        with CompositionService(catalog, config) as svc:
            results = [svc.compose_chain(chain, timeout=120) for chain in chains]
            assert all(result is not None for result in results)
            assert svc.breaker.state == "open"
            stats = catalog.checkpoints.stats()
            assert stats["disk_errors"] >= config.breaker_failure_threshold
            # Once open, writes are skipped without touching the sick disk.
            assert stats["disk_skipped"] >= 1
            health = svc.health()
            assert health["status"] == "degraded"
            assert any("breaker open" in reason for reason in health["reasons"])
        faults.clear()
        # Served results are correct despite the dead store.
        expected = compose_chain(chains[0])
        assert results[0].constraints.to_text() == expected.constraints.to_text()

    def test_probe_closes_the_breaker_when_storage_recovers(self, tmp_path, chains):
        catalog = MappingCatalog(tmp_path / "cat")
        config = ServiceConfig(
            micro_batch_wait_seconds=0.0,
            breaker_failure_threshold=1,
            breaker_recovery_seconds=0.01,
        )
        faults.install(FaultInjector.from_text("checkpoint.persist:eio"))
        with CompositionService(catalog, config) as svc:
            svc.compose_chain(chains[0], timeout=120)
            assert svc.breaker.state == "open"
            # Storage "recovers": the injected fault schedule goes away.
            faults.clear()
            assert svc.probe_storage() is True
            assert svc.breaker.state == "closed"
            # Durability resumes: new compositions persist to disk again.
            before = catalog.checkpoints.stats()["disk_writes"]
            svc.compose_chain(chains[1], timeout=120)
            assert catalog.checkpoints.stats()["disk_writes"] > before
            assert svc.health()["status"] == "ok"

    def test_background_probe_loop_recovers_without_intervention(
        self, tmp_path, chains
    ):
        import time

        catalog = MappingCatalog(tmp_path / "cat")
        config = ServiceConfig(
            micro_batch_wait_seconds=0.0,
            breaker_failure_threshold=1,
            breaker_recovery_seconds=0.05,
        )
        faults.install(FaultInjector.from_text("checkpoint.persist:eio"))
        with CompositionService(catalog, config) as svc:
            svc.compose_chain(chains[0], timeout=120)
            assert svc.breaker.state == "open"
            faults.clear()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and svc.breaker.state != "closed":
                time.sleep(0.02)
            assert svc.breaker.state == "closed"
            assert svc.metrics()["degradation"]["probes"] >= 1

    def test_store_result_drops_while_degraded_and_counts(self, tmp_path, chains):
        catalog = MappingCatalog(tmp_path / "cat")
        config = ServiceConfig(
            micro_batch_wait_seconds=0.0, breaker_recovery_seconds=3600.0
        )
        with CompositionService(catalog, config) as svc:
            mapping = chains[0][0]
            assert svc.store_mapping("composed", mapping) is True
            svc.breaker.force_open("test")
            assert svc.store_mapping("composed-2", mapping) is False
            degradation = svc.metrics()["degradation"]
            assert degradation["catalog_writes"] == 1
            assert degradation["catalog_writes_dropped"] == 1
        assert catalog.entry("mapping", "composed") is not None
