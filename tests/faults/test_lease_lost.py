"""A stalled lease holder must *observe* losing its lease (satellite of PR 9).

The scenario leader election depends on: a process holding the ``leader``
lease is SIGSTOPped (debugger, GC pause, cgroup freeze) past its TTL, a peer
takes the key over, and when the victim wakes up its next ``renew()`` MUST
return ``False`` and drop the key from its held table — a zombie that still
believed it held the lease would keep claiming leadership, and only fencing
epochs would stand between it and split-brain.
"""

import os
import signal
import time

from repro.catalog.leases import LeaseTable

_VICTIM = """
import sys, time
from repro.catalog.leases import LeaseTable

table = LeaseTable(sys.argv[1], owner="victim", ttl_seconds=1.0)
assert table.acquire("leader") is not None
print("held", flush=True)
# The stall window: SIGSTOP lands here, and the kernel keeps the sleep's
# deadline ticking while the process is stopped — exactly a real stall.
time.sleep(2.5)
print(f"renew {table.renew('leader')}", flush=True)
print(f"held-after {len(table.held())}", flush=True)
print(f"lost {table.stats()['lost']}", flush=True)
"""


class TestLeaseLostUnderStall:
    def test_sigstopped_holder_observes_renew_false(self, tmp_path, run_python):
        lease_dir = tmp_path / "leases"
        victim = run_python(_VICTIM, str(lease_dir), wait=False)
        try:
            assert victim.stdout.readline().strip() == "held"
            os.kill(victim.pid, signal.SIGSTOP)

            # Let the victim's TTL (1s) lapse while it is frozen, then take
            # the key over from this process — the takeover must succeed
            # because the lease on disk is expired, not because we forced it.
            time.sleep(1.6)
            usurper = LeaseTable(lease_dir, owner="usurper", ttl_seconds=30)
            lease = usurper.acquire("leader")
            assert lease is not None
            assert usurper.stats()["takeovers"] == 1

            os.kill(victim.pid, signal.SIGCONT)
            out, err = victim.communicate(timeout=60)
            assert victim.returncode == 0, f"victim failed:\n{out}\n{err}"
            lines = out.splitlines()
            assert "renew False" in lines
            assert "held-after 0" in lines  # exclusivity is known to be gone
            assert "lost 1" in lines

            # The usurper's claim survived the victim's wake-up untouched.
            current = usurper.peek("leader")
            assert current is not None and current.owner == "usurper"
        finally:
            if victim.poll() is None:
                os.kill(victim.pid, signal.SIGCONT)
                victim.kill()
                victim.communicate()
