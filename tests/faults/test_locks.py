"""FileLock timeout behaviour under contention.

``FileLock.acquire`` used to block indefinitely on flock; a crashed or hung
peer holding the lock would wedge every writer forever.  With a timeout it
polls non-blockingly under jittered backoff and raises a typed, catchable
error instead.
"""

import threading
import time

import pytest

from repro import faults
from repro.catalog.storage import FileLock
from repro.exceptions import CatalogError, CatalogLockTimeoutError
from repro.faults import FaultInjector


class TestFileLockTimeout:
    def test_timeout_raises_typed_catalog_error(self, tmp_path):
        path = tmp_path / "x.lock"
        holder_has_lock = threading.Event()
        release = threading.Event()

        def hold():
            with FileLock(path):
                holder_has_lock.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=hold)
        thread.start()
        try:
            assert holder_has_lock.wait(timeout=10)
            started = time.monotonic()
            with pytest.raises(CatalogLockTimeoutError) as excinfo:
                with FileLock(path, timeout=0.1):
                    pass
            assert time.monotonic() - started >= 0.1
            assert isinstance(excinfo.value, CatalogError)
            assert str(path) in str(excinfo.value)
        finally:
            release.set()
            thread.join()

    def test_acquires_when_holder_releases_within_the_timeout(self, tmp_path):
        path = tmp_path / "x.lock"
        holder_has_lock = threading.Event()

        def hold_briefly():
            with FileLock(path):
                holder_has_lock.set()
                time.sleep(0.1)

        thread = threading.Thread(target=hold_briefly)
        thread.start()
        try:
            assert holder_has_lock.wait(timeout=10)
            with FileLock(path, timeout=10.0):
                pass  # acquired after the holder let go
        finally:
            thread.join()

    def test_no_timeout_preserves_blocking_semantics(self, tmp_path):
        with FileLock(tmp_path / "x.lock"):
            pass  # plain blocking acquire still works uncontended

    def test_lock_acquire_fault_point_stalls(self, tmp_path):
        faults.install(FaultInjector.from_text("catalog.lock.acquire:stall:ms=40"))
        started = time.perf_counter()
        with FileLock(tmp_path / "x.lock", timeout=5.0):
            pass
        assert time.perf_counter() - started >= 0.035
