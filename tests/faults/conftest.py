"""Shared fixtures for the fault-injection / chaos suite.

Every test that installs a process-global injector must leave the process
clean — a leaked schedule would silently fault *other* tests' I/O.  The
autouse fixture guarantees it.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def _run_python(code: str, *args: str, env_extra=None, wait: bool = True, timeout=120):
    """Run ``code`` in a fresh interpreter with the repo on PYTHONPATH.

    ``env_extra`` sets fault schedules (``REPRO_FAULTS`` etc.) for the child
    only.  With ``wait`` the child must exit 0; otherwise the ``Popen`` is
    returned for the caller to kill or communicate with.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    env.pop(faults.LOG_ENV_VAR, None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [sys.executable, "-c", code, *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if not wait:
        return proc
    out, err = proc.communicate(timeout=timeout)
    assert proc.returncode == 0, f"worker failed (rc={proc.returncode}):\n{out}\n{err}"
    return out


@pytest.fixture()
def run_python():
    """Fixture handing tests the subprocess runner (tests dirs are not packages)."""
    return _run_python


@pytest.fixture()
def chaos_log_dir(tmp_path):
    """Where chaos workers drop their ``REPRO_FAULTS_LOG`` audit trails.

    Defaults to the test's tmpdir; CI points ``REPRO_CHAOS_LOG_DIR`` at a
    workspace directory so the logs survive the run and ride along as
    artifacts.
    """
    base = os.environ.get("REPRO_CHAOS_LOG_DIR")
    if not base:
        return tmp_path
    path = Path(base)
    path.mkdir(parents=True, exist_ok=True)
    return path
