"""The kill-the-primary failover drill: primary + follower + router processes.

The claim under test is the replication protocol's headline guarantee: a
SIGKILLed primary — mid-load, with a seeded fault schedule tearing journal
appends underneath it — loses **zero acknowledged versions**.  Every write
the primary acknowledged through the router is present, fingerprint-verified,
in the promoted follower's catalog; and router clients ride through the
failover seeing retries and 503-with-Retry-After backpressure, never a
dropped answer on reads.

Three real processes (like an operator would run them):

* ``primary``   — ``repro serve`` equivalent over catalog root A,
* ``follower``  — serving root B while tailing A's journal (local source, so
  the journal survives the primary's death and promotion can drain it),
* ``router``    — health-routing front tier over both.
"""

import json
import os
import shutil
import time
import urllib.error
import urllib.request

import pytest

from repro import faults, obs
from repro.catalog import MappingCatalog
from repro.engine.workloads import WorkloadConfig, generate_workload
from repro.textio.records import chain_to_text

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

_PRIMARY = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import CompositionService, ServiceConfig, ServiceHTTPServer

catalog = MappingCatalog(sys.argv[1])
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_FOLLOWER = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import (
    CompositionService, ReplicationFollower, ServiceConfig, ServiceHTTPServer,
    open_source,
)

catalog = MappingCatalog(sys.argv[1])
follower = ReplicationFollower(
    catalog, open_source(sys.argv[2]), poll_interval_seconds=0.05
).start()
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0, follower=follower)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_ROUTER = """
import sys, time
from repro.service import RouterHTTPServer

router = RouterHTTPServer(
    sys.argv[1:], port=0, health_interval_seconds=0.1, health_timeout_seconds=1.0
).start()
print(f"ready {router.address[1]}", flush=True)
while True:
    time.sleep(1)
"""


def _await_ready(proc, timeout=60):
    line = proc.stdout.readline()
    assert line.startswith("ready "), f"worker did not come up: {line!r}"
    return int(line.split()[1])


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode(), dict(response.headers)


def _post(url, body=b"", timeout=60):
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read().decode(), dict(response.headers)


def _wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestFailoverDrill:
    def test_kill_primary_promote_follower_zero_lost_versions(
        self, tmp_path, run_python, chaos_log_dir
    ):
        primary_root = tmp_path / "primary"
        follower_root = tmp_path / "follower"
        primary_log = chaos_log_dir / "failover-primary.jsonl"

        # Every process sinks its spans next to the fault logs, so the drill
        # can reassemble an acknowledged write's full cross-process trace —
        # and CI can carry the sinks along as artifacts.
        trace_sinks = {
            role: chaos_log_dir / f"failover-trace-{role}.jsonl"
            for role in ("router", "primary", "follower")
        }

        def _trace_env(role):
            return {
                obs.LOG_ENV_VAR: str(trace_sinks[role]),
                obs.SERVICE_ENV_VAR: role,
            }

        # The primary runs under a seeded schedule tearing ~10% of journal
        # appends: the catalog's retry policy heals every tear, so writes
        # still succeed — acknowledged means journaled, whatever the chaos.
        primary_env = {
            faults.ENV_VAR: (
                f"seed={CHAOS_SEED};journal.append.torn:torn:p=0.1:limit=3"
            ),
            faults.LOG_ENV_VAR: str(primary_log),
            **_trace_env("primary"),
        }
        procs = []
        try:
            primary = run_python(
                _PRIMARY, str(primary_root), env_extra=primary_env, wait=False
            )
            procs.append(primary)
            primary_port = _await_ready(primary)
            primary_base = f"http://127.0.0.1:{primary_port}"

            follower = run_python(
                _FOLLOWER,
                str(follower_root),
                str(primary_root),
                env_extra=_trace_env("follower"),
                wait=False,
            )
            procs.append(follower)
            follower_port = _await_ready(follower)
            follower_base = f"http://127.0.0.1:{follower_port}"

            router = run_python(
                _ROUTER,
                primary_base,
                follower_base,
                env_extra=_trace_env("router"),
                wait=False,
            )
            procs.append(router)
            router_port = _await_ready(router)
            router_base = f"http://127.0.0.1:{router_port}"

            problems = generate_workload(
                WorkloadConfig(
                    num_problems=8,
                    min_chain_length=3,
                    max_chain_length=4,
                    seed=CHAOS_SEED,
                )
            )

            # Phase 1: load through the router while everything is healthy.
            # The router answers with the trace id it minted at ingress —
            # the key for reassembling each write's cross-process tree.
            acknowledged = []
            acknowledged_traces = []
            for index, problem in enumerate(problems[:4]):
                name = f"drill-{index}"
                status, _, headers = _post(
                    f"{router_base}/compose?store={name}",
                    chain_to_text(problem.mappings).encode(),
                )
                assert status == 200
                if "X-Repro-Store-Dropped" not in headers:
                    acknowledged.append(name)
                    trace_id = headers.get(obs.TRACE_ID_HEADER)
                    assert trace_id, f"router acknowledged {name} without a trace id"
                    acknowledged_traces.append(trace_id)
            assert acknowledged, "no write was acknowledged before the kill"

            # Phase 2: SIGKILL the primary mid-load — no cleanup, no flush.
            primary.kill()
            primary.wait(timeout=30)

            # Reads ride through: the router retries onto the follower, the
            # client sees an answer (maybe after a retry), never an error.
            status, _, headers = _get(f"{router_base}/healthz")
            assert status == 200
            assert headers["x-repro-backend"] == follower_base

            # Writes have no backend until promotion: 503 + Retry-After is
            # the router telling clients to come back, not an opaque failure.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    f"{router_base}/compose?store=during-outage",
                    chain_to_text(problems[4].mappings).encode(),
                )
            assert excinfo.value.code == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1

            # Phase 3: the operator promotes the follower.  Its final
            # catch-up drains the dead primary's journal from disk, so every
            # acknowledged write is already (or now) mirrored.
            status, body, _ = _post(f"{follower_base}/admin/promote")
            assert status == 200
            assert json.loads(body)["promoted"] is True

            # The router's next health tick observes the new primary...
            def promoted_visible():
                _, body, _ = _get(f"{router_base}/router/status")
                table = json.loads(body)
                return any(
                    b["role"] == "primary" and b["healthy"] and b["url"] == follower_base
                    for b in table["backends"]
                )

            assert _wait_for(promoted_visible)

            # ...and writes flow again, into the promoted replica.
            for index, problem in enumerate(problems[4:], start=4):
                name = f"drill-{index}"
                status, _, headers = _post(
                    f"{router_base}/compose?store={name}",
                    chain_to_text(problem.mappings).encode(),
                )
                assert status == 200
                assert headers["x-repro-backend"] == follower_base
                if "X-Repro-Store-Dropped" not in headers:
                    acknowledged.append(name)

            _, body, _ = _get(f"{router_base}/router/status")
            table = json.loads(body)
            assert table["failovers_observed"] >= 1

            # Phase 4: zero lost versions.  Every acknowledged store exists,
            # fingerprint-verified, in the promoted catalog.
            promoted = MappingCatalog(follower_root)
            stored = set(promoted.names("mapping"))
            missing = [name for name in acknowledged if name not in stored]
            assert not missing, f"acknowledged writes lost in failover: {missing}"
            for name in acknowledged:
                assert promoted.verify("mapping", name), f"{name} failed verification"

            # The primary's journal chaos actually fired and was audited.
            if primary_log.exists():
                events = [
                    json.loads(line)
                    for line in primary_log.read_text().splitlines()
                    if line.strip()
                ]
                assert all(e["point"] == "journal.append.torn" for e in events)

            # Preserve the journal segments next to the fault logs: locally
            # that is the test tmpdir; in CI it is the artifact directory, so
            # a red run can be replayed from the exact journals it died with.
            for label, root in (("primary", primary_root), ("follower", follower_root)):
                journal = root / "journal"
                if journal.exists():
                    shutil.copytree(
                        journal,
                        chaos_log_dir / f"failover-journal-{label}",
                        dirs_exist_ok=True,
                    )

            # Phase 5: the telemetry headline.  Merging the three sinks must
            # reconstruct, for at least one acknowledged write, a single
            # orphan-free tree spanning router relay → primary ingress →
            # journal append → follower apply.  The follower records its
            # apply span right after the catalog mutation, so give the last
            # flush a moment rather than racing it.
            sink_paths = [str(path) for path in trace_sinks.values()]
            required = {
                "router.request",
                "http.request",
                "journal.append",
                "replica.apply",
            }

            def complete_acknowledged_traces():
                traces = obs.merge_spans(obs.load_spans(sink_paths))
                return [
                    trace_id
                    for trace_id in acknowledged_traces
                    if trace_id in traces
                    and required <= {r.get("name") for r in traces[trace_id]}
                ]

            assert _wait_for(complete_acknowledged_traces), (
                "no acknowledged write produced a full router→primary→"
                "journal→follower trace tree; sinks: "
                + ", ".join(sink_paths)
            )
            traces = obs.merge_spans(obs.load_spans(sink_paths))
            for trace_id in complete_acknowledged_traces():
                _, orphans = obs.build_tree(traces[trace_id])
                assert not orphans, f"trace {trace_id} has orphans: {orphans}"

            # The CLI agrees — this is exactly the check CI runs over the
            # uploaded sink artifacts.
            from repro.__main__ import main as repro_main

            argv = ["trace", *sink_paths, "--verify"]
            for name in sorted(required):
                argv += ["--require", name]
            assert repro_main(argv) == 0
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.communicate()

    def test_follower_survives_primary_flap(self, tmp_path, run_python):
        """A follower keeps polling through a primary restart and catches up."""
        primary_root = tmp_path / "primary"
        follower_root = tmp_path / "follower"
        procs = []
        try:
            primary = run_python(_PRIMARY, str(primary_root), wait=False)
            procs.append(primary)
            primary_port = _await_ready(primary)
            primary_base = f"http://127.0.0.1:{primary_port}"

            follower = run_python(
                _FOLLOWER, str(follower_root), str(primary_root), wait=False
            )
            procs.append(follower)
            follower_port = _await_ready(follower)
            follower_base = f"http://127.0.0.1:{follower_port}"

            problems = generate_workload(
                WorkloadConfig(
                    num_problems=2, min_chain_length=3, max_chain_length=3, seed=11
                )
            )
            _post(
                f"{primary_base}/compose?store=before-flap",
                chain_to_text(problems[0].mappings).encode(),
            )
            primary.kill()
            primary.communicate()

            # The follower stays healthy (it is the failover target); with a
            # local source the dead primary's journal is still readable on
            # disk, so replication lag drains to zero.
            def caught_up():
                _, body, _ = _get(f"{follower_base}/healthz")
                health = json.loads(body)
                replication = health.get("replication", {})
                return replication.get("lag_entries") == 0
            assert _wait_for(caught_up)

            _, body, _ = _get(f"{follower_base}/healthz")
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["role"] == "follower"
            mirrored = MappingCatalog(follower_root)
            assert "before-flap" in mirrored.names("mapping")
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.communicate()
