"""Tests for the lease-based cross-process claim table.

The guarantee under test: while a lease is live, at most one owner holds the
key — and a *dead* owner (SIGKILL, no cleanup) loses its claims after the
TTL instead of wedging the key forever.
"""

import json
import time

import pytest

from repro.catalog.leases import DEFAULT_LEASE_TTL_SECONDS, LeaseTable
from repro.exceptions import LeaseUnavailableError


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestClaimLifecycle:
    def test_acquire_renew_release(self, tmp_path):
        table = LeaseTable(tmp_path, owner="alice", ttl_seconds=30.0)
        lease = table.acquire("job-1")
        assert lease is not None and lease.owner == "alice"
        assert table.peek("job-1").owner == "alice"
        assert table.renew("job-1") is True
        table.release("job-1")
        assert table.peek("job-1") is None
        stats = table.stats()
        assert stats["acquired"] == 1
        assert stats["renewals"] == 1
        assert stats["released"] == 1
        assert stats["held"] == 0

    def test_live_claim_by_peer_is_respected(self, tmp_path):
        alice = LeaseTable(tmp_path, owner="alice", ttl_seconds=30.0)
        bob = LeaseTable(tmp_path, owner="bob", ttl_seconds=30.0)
        assert alice.acquire("job-1") is not None
        assert bob.acquire("job-1") is None
        assert bob.stats()["contested"] == 1
        # A different key is free.
        assert bob.acquire("job-2") is not None

    def test_own_claim_reacquires(self, tmp_path):
        table = LeaseTable(tmp_path, owner="alice", ttl_seconds=30.0)
        first = table.acquire("job-1")
        second = table.acquire("job-1")
        assert second is not None
        assert second.expires_at >= first.expires_at

    def test_default_owner_is_process_unique(self, tmp_path):
        a = LeaseTable(tmp_path)
        b = LeaseTable(tmp_path)
        assert a.owner != b.owner  # nonce guards against pid reuse


class TestExpiryAndTakeover:
    def test_expired_lease_is_taken_over(self, tmp_path):
        clock = FakeClock()
        alice = LeaseTable(tmp_path, owner="alice", ttl_seconds=10.0, clock=clock)
        bob = LeaseTable(tmp_path, owner="bob", ttl_seconds=10.0, clock=clock)
        assert alice.acquire("job-1") is not None
        assert bob.acquire("job-1") is None
        clock.advance(10.1)  # alice never renewed: her lease expires
        stolen = bob.acquire("job-1")
        assert stolen is not None and stolen.owner == "bob"
        assert bob.stats()["takeovers"] == 1

    def test_renew_detects_a_lost_lease(self, tmp_path):
        clock = FakeClock()
        alice = LeaseTable(tmp_path, owner="alice", ttl_seconds=10.0, clock=clock)
        bob = LeaseTable(tmp_path, owner="bob", ttl_seconds=10.0, clock=clock)
        alice.acquire("job-1")
        clock.advance(10.1)
        bob.acquire("job-1")  # takeover
        assert alice.renew("job-1") is False
        assert alice.stats()["lost"] == 1
        assert alice.stats()["held"] == 0

    def test_release_after_takeover_leaves_new_owner_intact(self, tmp_path):
        clock = FakeClock()
        alice = LeaseTable(tmp_path, owner="alice", ttl_seconds=10.0, clock=clock)
        bob = LeaseTable(tmp_path, owner="bob", ttl_seconds=10.0, clock=clock)
        alice.acquire("job-1")
        clock.advance(10.1)
        bob.acquire("job-1")
        alice.release("job-1")  # must not unlink bob's claim
        assert alice.peek("job-1").owner == "bob"

    def test_heartbeat_keeps_leases_alive(self, tmp_path):
        alice = LeaseTable(tmp_path, owner="alice", ttl_seconds=0.4)
        bob = LeaseTable(tmp_path, owner="bob", ttl_seconds=0.4)
        alice.acquire("job-1")
        alice.start_heartbeat(interval_seconds=0.05)
        try:
            deadline = time.monotonic() + 1.0  # 2.5x the TTL
            while time.monotonic() < deadline:
                assert bob.acquire("job-1") is None, "heartbeat failed to renew"
                time.sleep(0.05)
        finally:
            alice.stop_heartbeat()
        assert alice.stats()["renewals"] >= 2


class TestRobustness:
    def test_corrupt_lease_file_is_an_absent_claim(self, tmp_path):
        table = LeaseTable(tmp_path, owner="alice", ttl_seconds=30.0)
        table.acquire("job-1")
        path = table._lease_path("job-1")
        path.write_text("{torn json", encoding="utf-8")
        bob = LeaseTable(tmp_path, owner="bob", ttl_seconds=30.0)
        assert bob.peek("job-1") is None
        assert bob.acquire("job-1") is not None  # claimable immediately

    def test_wait_acquire_times_out_on_a_live_peer(self, tmp_path):
        alice = LeaseTable(tmp_path, owner="alice", ttl_seconds=30.0)
        bob = LeaseTable(tmp_path, owner="bob", ttl_seconds=30.0)
        alice.acquire("job-1")
        started = time.monotonic()
        with pytest.raises(LeaseUnavailableError):
            bob.wait_acquire("job-1", timeout=0.2)
        assert time.monotonic() - started >= 0.2

    def test_wait_acquire_wins_when_holder_releases(self, tmp_path):
        import threading

        alice = LeaseTable(tmp_path, owner="alice", ttl_seconds=30.0)
        bob = LeaseTable(tmp_path, owner="bob", ttl_seconds=30.0)
        alice.acquire("job-1")
        releaser = threading.Timer(0.1, alice.release, args=("job-1",))
        releaser.start()
        try:
            lease = bob.wait_acquire("job-1", timeout=10.0)
        finally:
            releaser.join()
        assert lease.owner == "bob"

    def test_default_ttl_is_sane(self):
        assert DEFAULT_LEASE_TTL_SECONDS > 0


#: Acquires one lease with a short TTL, reports it, then spins forever
#: renewing nothing — the parent SIGKILLs it mid-hold.
_HOLDER = """
import sys, time
from repro.catalog.leases import LeaseTable

directory, ttl = sys.argv[1], float(sys.argv[2])
table = LeaseTable(directory, owner="doomed", ttl_seconds=ttl)
assert table.acquire("job-1") is not None
print("held", flush=True)
time.sleep(3600)
"""


class TestCrashTakeover:
    def test_sigkilled_holder_loses_the_lease_after_ttl(self, tmp_path, run_python):
        ttl = 1.0
        holder = run_python(_HOLDER, str(tmp_path), str(ttl), wait=False)
        assert holder.stdout.readline().strip() == "held"
        holder.kill()
        holder.communicate()

        survivor = LeaseTable(tmp_path, owner="survivor", ttl_seconds=ttl)
        # While the dead owner's lease is still live, it is respected...
        assert survivor.acquire("job-1") is None
        # ...and once it expires (no heartbeat renews it), it is stolen.
        lease = survivor.wait_acquire("job-1", timeout=30.0)
        assert lease.owner == "survivor"
        assert survivor.stats()["takeovers"] == 1

    def test_lease_files_are_json_on_disk(self, tmp_path):
        table = LeaseTable(tmp_path, owner="alice", ttl_seconds=30.0)
        table.acquire("job-1")
        payload = json.loads(table._lease_path("job-1").read_text())
        assert payload["owner"] == "alice"
        assert payload["key"] == "job-1"
        assert payload["expires_at"] > payload["acquired_at"]


class TestHeartbeatFailureCounters:
    def _wait_for(self, predicate, timeout=10.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return predicate()

    def test_failing_heartbeat_is_counted_not_fatal(self, tmp_path):
        table = LeaseTable(tmp_path, owner="alice", ttl_seconds=30.0)
        table.acquire("job-1")

        def broken_renew_all():
            raise OSError("injected heartbeat failure")

        table.renew_all = broken_renew_all
        table.start_heartbeat(interval_seconds=0.01)
        try:
            assert self._wait_for(lambda: table.stats()["heartbeat_failures"] >= 2)
            stats = table.stats()
            assert stats["heartbeat_consecutive_failures"] >= 1
            assert table._heartbeat.is_alive()  # the thread survived
            # Recovery: a working renewal round resets the consecutive count
            # (the lifetime tally keeps growing monotonically).
            del table.renew_all
            assert self._wait_for(
                lambda: table.stats()["heartbeat_consecutive_failures"] == 0
            )
            assert table.stats()["heartbeat_failures"] >= 2
        finally:
            table.stop_heartbeat()
            table.release_all()

    def test_stats_expose_heartbeat_counters_from_the_start(self, tmp_path):
        stats = LeaseTable(tmp_path, owner="alice").stats()
        assert stats["heartbeat_failures"] == 0
        assert stats["heartbeat_consecutive_failures"] == 0
