"""Unit tests for the deterministic fault injector itself.

The chaos suite is only as trustworthy as the injector: these tests pin the
schedule grammar, the determinism guarantee (same seed, same call sequence →
same decisions), and the semantics of every fault kind short of ``crash``
(crash is exercised with real subprocesses in ``test_chaos.py``).
"""

import errno
import json
import time

import pytest

from repro import faults
from repro.faults import FaultInjector, FaultSpec


class TestScheduleGrammar:
    def test_parses_points_kinds_and_options(self):
        injector = FaultInjector.from_text(
            "seed=7; storage.write.begin:eio:p=0.25 ;"
            "catalog.lock.acquire:stall:ms=25:after=2;"
            "storage.write.after_rename:crash:nth=3:limit=1"
        )
        assert injector.seed == 7
        assert [spec.label() for spec in injector.specs] == [
            "storage.write.begin:eio",
            "catalog.lock.acquire:stall",
            "storage.write.after_rename:crash",
        ]
        assert injector.specs[0].probability == 0.25
        assert injector.specs[1].delay_ms == 25.0
        assert injector.specs[1].after == 2
        assert injector.specs[2].nth == 3
        assert injector.specs[2].limit == 1

    def test_empty_schedule_and_blank_clauses(self):
        assert FaultInjector.from_text("").specs == []
        assert FaultInjector.from_text(" ; ; ").specs == []

    @pytest.mark.parametrize(
        "bad",
        [
            "storage.write.begin",  # no kind
            "storage.write.begin:explode",  # unknown kind
            "storage.write.begin:eio:p=2.0",  # probability out of range
            "storage.write.begin:eio:frequency=3",  # unknown option
            "storage.write.begin:eio:p=",  # empty value
        ],
    )
    def test_malformed_clauses_are_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultInjector.from_text(bad)

    def test_wildcard_point_matches_prefix(self):
        spec = FaultSpec(point="storage.*", kind="eio")
        assert spec.matches("storage.write.begin")
        assert spec.matches("storage.fsync")
        assert not spec.matches("catalog.shard.read")


class TestDeterminism:
    def _decisions(self, text, point, calls):
        injector = FaultInjector.from_text(text)
        outcomes = []
        for _ in range(calls):
            try:
                injector.fire(point)
                outcomes.append(False)
            except OSError:
                outcomes.append(True)
        return outcomes

    def test_same_seed_same_call_sequence_same_decisions(self):
        text = "seed=42;storage.write.begin:eio:p=0.3"
        first = self._decisions(text, "storage.write.begin", 200)
        second = self._decisions(text, "storage.write.begin", 200)
        assert first == second
        assert any(first) and not all(first)  # p=0.3 actually fires sometimes

    def test_different_seeds_differ(self):
        point = "storage.write.begin"
        a = self._decisions(f"seed=1;{point}:eio:p=0.3", point, 200)
        b = self._decisions(f"seed=2;{point}:eio:p=0.3", point, 200)
        assert a != b

    def test_adding_a_clause_does_not_perturb_earlier_clauses(self):
        # Per-spec PRNGs are seeded from (seed, point, kind, index), so a
        # schedule extended with new clauses replays the old clauses' draws.
        point = "storage.write.begin"
        alone = self._decisions(f"seed=9;{point}:eio:p=0.3", point, 100)
        extended = self._decisions(
            f"seed=9;{point}:eio:p=0.3;checkpoint.load:slow:ms=1", point, 100
        )
        assert alone == extended


class TestFiringSemantics:
    def test_eio_is_a_real_transient_oserror(self):
        injector = FaultInjector.from_text("storage.write.begin:eio")
        with pytest.raises(OSError) as excinfo:
            injector.fire("storage.write.begin")
        assert excinfo.value.errno == errno.EIO

    def test_slow_sleeps_but_does_not_raise(self):
        injector = FaultInjector.from_text("checkpoint.load:slow:ms=30")
        started = time.perf_counter()
        injector.fire("checkpoint.load")
        assert time.perf_counter() - started >= 0.025

    def test_after_skips_and_limit_stops(self):
        injector = FaultInjector.from_text("p:eio:after=2:limit=1")
        injector.fire("p")  # call 1: skipped (after)
        injector.fire("p")  # call 2: skipped (after)
        with pytest.raises(OSError):
            injector.fire("p")  # call 3: fires
        injector.fire("p")  # limit reached: never again
        assert injector.stats()["fired_total"] == 1

    def test_nth_fires_every_nth_call(self):
        injector = FaultInjector.from_text("p:eio:nth=3")
        fired = []
        for call in range(1, 10):
            try:
                injector.fire("p")
                fired.append(False)
            except OSError:
                fired.append(True)
        assert fired == [False, False, True] * 3

    def test_torn_data_truncates_and_counts(self):
        injector = FaultInjector.from_text("storage.write.torn:torn:limit=1")
        payload = b"0123456789abcdef"
        torn = injector.torn_data("storage.write.torn", payload)
        assert torn == payload[: len(payload) // 2]
        assert injector.torn_data("storage.write.torn", payload) is None  # limit
        assert injector.stats()["fired_total"] == 1

    def test_unmatched_points_are_no_ops(self):
        injector = FaultInjector.from_text("checkpoint.load:eio")
        injector.fire("storage.write.begin")  # different point: nothing
        assert injector.stats()["fired_total"] == 0


class TestGlobalActivation:
    def test_install_fire_clear(self):
        faults.install(FaultInjector.from_text("p:eio"))
        with pytest.raises(OSError):
            faults.fire("p")
        faults.clear()
        faults.fire("p")  # cleared: no-op

    def test_module_level_fire_without_injector_is_free(self):
        faults.clear()
        faults.fire("storage.write.begin")
        assert faults.torn_data("storage.write.torn", b"data") is None

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "p:eio")
        injector = FaultInjector.from_env()
        assert injector is not None and len(injector.specs) == 1
        monkeypatch.setenv(faults.ENV_VAR, "")
        assert FaultInjector.from_env() is None

    def test_fired_faults_are_logged_as_jsonl(self, tmp_path):
        log = tmp_path / "faults.jsonl"
        injector = FaultInjector.from_text("p:eio:limit=2", log_path=str(log))
        for _ in range(4):
            try:
                injector.fire("p")
            except OSError:
                pass
        records = [json.loads(line) for line in log.read_text().splitlines()]
        assert len(records) == 2
        assert all(record["point"] == "p" for record in records)
        assert all(record["spec"] == "p:eio" for record in records)
        assert records[0]["fired"] == 1 and records[1]["fired"] == 2
