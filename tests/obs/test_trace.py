"""Unit tests for request-scoped tracing (``repro.obs``).

The tracing contract the rest of the suite leans on: spans are free on
untraced paths, propagate across threads and processes through explicit
contexts, survive into JSONL sinks, and merge back into orphan-free trees.
"""

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _fresh_recorder():
    """Each test gets its own recorder; none leaks a sink or listeners."""
    obs.configure(service="test", log_path=None)
    yield
    obs.configure(service="", log_path=None)


class TestSpanRecording:
    def test_span_without_context_is_a_noop(self):
        with obs.span("quiet") as handle:
            assert handle.context is None
            assert obs.current() is None
        assert obs.recorder().spans() == []

    def test_new_trace_records_a_root_span(self):
        with obs.span("root", new_trace=True, method="POST") as handle:
            assert handle.context is not None
            assert obs.current() is handle.context
        records = obs.recorder().spans()
        assert len(records) == 1
        (record,) = records
        assert record["name"] == "root"
        assert record["parent_id"] is None
        assert record["status"] == "ok"
        assert record["service"] == "test"
        assert record["attrs"]["method"] == "POST"
        assert record["duration"] >= 0.0

    def test_nested_spans_parent_on_the_ambient_context(self):
        with obs.span("outer", new_trace=True) as outer:
            with obs.span("inner"):
                pass
        inner, outer_rec = sorted(
            obs.recorder().spans(), key=lambda r: r["name"]
        )
        assert inner["trace_id"] == outer_rec["trace_id"]
        assert inner["parent_id"] == outer.context.span_id

    def test_exception_marks_status_error_and_restores_context(self):
        with pytest.raises(ValueError):
            with obs.span("boom", new_trace=True):
                raise ValueError("x")
        (record,) = obs.recorder().spans()
        assert record["status"] == "error"
        assert obs.current() is None

    def test_record_start_emits_an_immediate_start_event(self):
        with obs.span("slow", new_trace=True, record_start=True):
            mid = obs.recorder().spans()
            assert len(mid) == 1 and mid[0]["event"] == "start"
        start, done = obs.recorder().spans()
        assert start["span_id"] == done["span_id"]
        assert "duration" not in start and "duration" in done

    def test_record_span_joins_the_given_parent(self):
        parent = obs.SpanContext(trace_id=obs.new_trace_id(), span_id="p1")
        child = obs.record_span("later", parent=parent, started_at=1.0, duration=0.5)
        (record,) = obs.recorder().spans()
        assert record["parent_id"] == "p1"
        assert record["trace_id"] == parent.trace_id
        assert child.trace_id == parent.trace_id

    def test_ring_filter_by_trace_id(self):
        with obs.span("a", new_trace=True) as a:
            pass
        with obs.span("b", new_trace=True):
            pass
        only_a = obs.recorder().spans(a.context.trace_id)
        assert [r["name"] for r in only_a] == ["a"]


class TestPropagation:
    def test_headers_round_trip(self):
        context = obs.SpanContext(trace_id="t" * 32, span_id="s" * 16)
        extracted = obs.extract_context(context.headers())
        assert extracted == context

    def test_extract_requires_a_trace_id(self):
        assert obs.extract_context({}) is None
        assert obs.extract_context({obs.SPAN_ID_HEADER: "x"}) is None

    def test_ambient_installs_and_restores(self):
        context = obs.SpanContext(trace_id="t", span_id="s")
        with obs.ambient(context):
            assert obs.current() is context
            with obs.span("child") as handle:
                assert handle.context.trace_id == "t"
        assert obs.current() is None


class TestSink:
    def test_spans_land_in_the_jsonl_sink(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        obs.configure(service="sinky", log_path=str(sink))
        with obs.span("persisted", new_trace=True):
            pass
        lines = [json.loads(l) for l in sink.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["name"] == "persisted"
        assert lines[0]["service"] == "sinky"

    def test_sink_failure_is_silent_and_final(self, tmp_path):
        # A directory path cannot be opened for append: the sink latches
        # failed, spans keep flowing to the ring, nothing raises.
        obs.configure(service="x", log_path=str(tmp_path))
        with obs.span("still-works", new_trace=True):
            pass
        assert [r["name"] for r in obs.recorder().spans()] == ["still-works"]

    def test_listeners_see_records_and_cannot_break_requests(self):
        seen = []
        obs.recorder().add_listener(seen.append)
        obs.recorder().add_listener(lambda r: 1 / 0)  # must be swallowed
        with obs.span("observed", new_trace=True):
            pass
        assert [r["name"] for r in seen] == ["observed"]
        obs.recorder().remove_listener(seen.append)


class TestMergeAndVerify:
    def _record(self, trace_id, span_id, parent_id=None, **extra):
        record = {
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": extra.pop("name", span_id),
            "start": extra.pop("start", 0.0),
            "duration": extra.pop("duration", 0.001),
        }
        record.update(extra)
        return record

    def test_merge_groups_by_trace_and_dedups_span_ids(self):
        start_event = self._record("t1", "a", name="root", start=1.0)
        del start_event["duration"]  # a bare start event
        completed = self._record("t1", "a", name="root", start=1.0)
        other = self._record("t2", "b", name="other")
        traces = obs.merge_spans([start_event, completed, other])
        assert set(traces) == {"t1", "t2"}
        assert len(traces["t1"]) == 1
        assert "duration" in traces["t1"][0]  # the completed record won

    def test_build_tree_separates_roots_and_orphans(self):
        records = [
            self._record("t", "root", start=1.0),
            self._record("t", "child", parent_id="root", start=2.0),
            self._record("t", "lost", parent_id="missing", start=3.0),
        ]
        roots, orphans = obs.build_tree(records)
        assert [r["span_id"] for r in roots] == ["root"]
        assert [c["span_id"] for c in roots[0]["children"]] == ["child"]
        assert [o["span_id"] for o in orphans] == ["lost"]

    def test_verify_flags_orphans(self):
        traces = {"t": [self._record("t", "lost", parent_id="gone")]}
        problems = obs.verify(traces)
        assert len(problems) == 1
        assert "missing parent gone" in problems[0]

    def test_verify_require_needs_one_trace_with_all_spans(self):
        traces = {
            "t1": [self._record("t1", "a", name="http.request")],
            "t2": [
                self._record("t2", "b", name="http.request"),
                self._record("t2", "c", parent_id="b", name="journal.append"),
            ],
        }
        assert obs.verify(traces, require=["http.request", "journal.append"]) == []
        problems = obs.verify(traces, require=["http.request", "replica.apply"])
        assert problems and "replica.apply" in problems[0]

    def test_load_spans_skips_junk_and_missing_files(self, tmp_path):
        sink = tmp_path / "sink.jsonl"
        good = self._record("t", "a")
        sink.write_text(json.dumps(good) + "\nnot json\n{}\n")
        spans = obs.load_spans([str(sink), str(tmp_path / "absent.jsonl")])
        assert len(spans) == 1  # junk line and span-id-less record dropped

    def test_format_trace_marks_incomplete_and_orphaned_spans(self):
        start_only = self._record("t", "a", name="root", start=1.0)
        del start_only["duration"]
        records = [
            start_only,
            self._record("t", "b", parent_id="a", name="child", start=2.0),
            self._record("t", "c", parent_id="zzz", name="stray", start=3.0),
        ]
        text = obs.format_trace("t", records)
        assert "(incomplete)" in text
        assert "? orphan stray" in text
        assert text.splitlines()[0].startswith("trace t")
