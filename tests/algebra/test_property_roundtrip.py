"""Seeded randomized parser <-> printer round-trip property tests.

Every expression the generator can build — all operators, nested conditions,
Skolem applications, constants with escaping-hostile strings — must satisfy
``parse(print(e)) == e``, and constraints likewise.  All randomness flows
through the seed, so failures are reproducible.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.conditions import (
    And,
    Comparison,
    FALSE,
    Not,
    Or,
    TRUE,
)
from repro.algebra.expressions import (
    AntiSemiJoin,
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    SemiJoin,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.algebra.parser import parse_constraint, parse_expression
from repro.algebra.printer import expression_to_text
from repro.algebra.terms import Attribute, Constant
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint

#: Constant values deliberately including quote/backslash escaping hazards.
CONSTANT_POOL = (0, 1, -3, 42, 0.5, 2.25, "a", "xyz", "it's", "back\\slash", "", "c0")

OPERATORS = ("=", "!=", "<", "<=", ">", ">=")


def _random_term(rng: random.Random, arity: int):
    if rng.random() < 0.6:
        return Attribute(rng.randrange(arity))
    return Constant(rng.choice(CONSTANT_POOL))


def _random_condition(rng: random.Random, arity: int, depth: int):
    if depth <= 0 or rng.random() < 0.5:
        roll = rng.random()
        if roll < 0.1:
            return TRUE
        if roll < 0.2:
            return FALSE
        return Comparison(
            _random_term(rng, arity), rng.choice(OPERATORS), _random_term(rng, arity)
        )
    kind = rng.randrange(3)
    if kind == 0:
        return Not(_random_condition(rng, arity, depth - 1))
    operands = [
        _random_condition(rng, arity, depth - 1) for _ in range(rng.randint(2, 3))
    ]
    return And(*operands) if kind == 1 else Or(*operands)


def _random_expression(rng: random.Random, arity: int, depth: int):
    """A random well-formed expression of exactly ``arity`` columns."""
    if depth <= 0 or rng.random() < 0.25:
        roll = rng.random()
        if roll < 0.5:
            return Relation(f"{rng.choice('RSTU')}{arity}", arity)
        if roll < 0.65:
            return Domain(arity)
        if roll < 0.8:
            return Empty(arity)
        rows = tuple(
            tuple(rng.choice(CONSTANT_POOL) for _ in range(arity))
            for _ in range(rng.randint(1, 3))
        )
        return ConstantRelation(tuples=rows, constant_arity=arity)
    kind = rng.randrange(9)
    if kind == 0:
        return Union(
            _random_expression(rng, arity, depth - 1),
            _random_expression(rng, arity, depth - 1),
        )
    if kind == 1:
        return Intersection(
            _random_expression(rng, arity, depth - 1),
            _random_expression(rng, arity, depth - 1),
        )
    if kind == 2:
        return Difference(
            _random_expression(rng, arity, depth - 1),
            _random_expression(rng, arity, depth - 1),
        )
    if kind == 3 and arity >= 2:
        split = rng.randint(1, arity - 1)
        return CrossProduct(
            _random_expression(rng, split, depth - 1),
            _random_expression(rng, arity - split, depth - 1),
        )
    if kind == 4:
        child = _random_expression(rng, arity, depth - 1)
        return Selection(child, _random_condition(rng, arity, depth - 1))
    if kind == 5:
        child_arity = rng.randint(1, 4)
        child = _random_expression(rng, child_arity, depth - 1)
        indices = tuple(rng.randrange(child_arity) for _ in range(arity))
        return Projection(child, indices)
    if kind == 6 and arity >= 2:
        child = _random_expression(rng, arity - 1, depth - 1)
        depends_on = tuple(
            sorted(rng.sample(range(arity - 1), rng.randint(0, arity - 1)))
        )
        return SkolemApplication(child, SkolemFunction(f"f{rng.randrange(5)}", depends_on))
    if kind == 7:
        right_arity = rng.randint(1, 3)
        right = _random_expression(rng, right_arity, depth - 1)
        left = _random_expression(rng, arity, depth - 1)
        condition = _random_condition(rng, arity + right_arity, depth - 1)
        join = rng.choice((SemiJoin, AntiSemiJoin))
        return join(left, right, condition)
    if kind == 8 and arity >= 2:
        split = rng.randint(1, arity - 1)
        left = _random_expression(rng, split, depth - 1)
        right = _random_expression(rng, arity - split, depth - 1)
        condition = _random_condition(rng, arity, depth - 1)
        return LeftOuterJoin(left, right, condition)
    return Selection(
        _random_expression(rng, arity, depth - 1), _random_condition(rng, arity, 1)
    )


@pytest.mark.parametrize("seed", range(60))
def test_expression_roundtrip_property(seed):
    rng = random.Random(seed)
    expression = _random_expression(rng, rng.randint(1, 4), depth=rng.randint(1, 4))
    text = expression_to_text(expression)
    assert parse_expression(text) == expression, text


@pytest.mark.parametrize("seed", range(30))
def test_constraint_roundtrip_property(seed):
    rng = random.Random(1000 + seed)
    arity = rng.randint(1, 3)
    left = _random_expression(rng, arity, depth=2)
    right = _random_expression(rng, arity, depth=2)
    constraint_type = rng.choice((ContainmentConstraint, EqualityConstraint))
    constraint = constraint_type(left, right)
    assert parse_constraint(str(constraint)) == constraint, str(constraint)


def test_generator_covers_every_operator():
    """The property tests are only as good as the generator's coverage."""
    seen = set()
    for seed in range(300):
        rng = random.Random(seed)
        expression = _random_expression(rng, rng.randint(1, 4), depth=rng.randint(1, 4))
        stack = [expression]
        while stack:
            node = stack.pop()
            seen.add(type(node).__name__)
            stack.extend(node.children)
    expected = {
        "Relation",
        "Domain",
        "Empty",
        "ConstantRelation",
        "Union",
        "Intersection",
        "Difference",
        "CrossProduct",
        "Selection",
        "Projection",
        "SkolemApplication",
        "SemiJoin",
        "AntiSemiJoin",
        "LeftOuterJoin",
    }
    assert expected <= seen
