"""Tests for selection conditions."""

import pytest

from repro.algebra.conditions import (
    And,
    Comparison,
    FALSE,
    Not,
    Or,
    TRUE,
    conjunction,
    disjunction,
    equals,
    equals_const,
)
from repro.algebra.terms import NULL, Attribute, Constant
from repro.exceptions import ConditionError


class TestComparison:
    def test_equals_true(self):
        assert equals(0, 1).evaluate((5, 5))

    def test_equals_false(self):
        assert not equals(0, 1).evaluate((5, 6))

    def test_equals_const(self):
        assert equals_const(1, "x").evaluate((0, "x"))
        assert not equals_const(1, "x").evaluate((0, "y"))

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 1, 1, True),
            ("!=", 1, 2, True),
            ("!=", 1, 1, False),
            ("<", 1, 2, True),
            ("<", 2, 1, False),
            ("<=", 2, 2, True),
            (">", 3, 1, True),
            (">=", 3, 3, True),
        ],
    )
    def test_operators(self, op, left, right, expected):
        condition = Comparison(Attribute(0), op, Attribute(1))
        assert condition.evaluate((left, right)) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConditionError):
            Comparison(Attribute(0), "~", Attribute(1))

    def test_non_term_operand_rejected(self):
        with pytest.raises(ConditionError):
            Comparison(3, "=", Attribute(0))

    def test_null_never_equal(self):
        assert not equals(0, 1).evaluate((NULL, NULL))
        assert not equals_const(0, 5).evaluate((NULL,))

    def test_null_never_unequal_either(self):
        condition = Comparison(Attribute(0), "!=", Attribute(1))
        assert not condition.evaluate((NULL, 3))

    def test_mixed_type_comparison_is_total(self):
        condition = Comparison(Attribute(0), "<", Attribute(1))
        # Must not raise even for incomparable types.
        condition.evaluate(("a", 1))

    def test_referenced_indices(self):
        assert equals(0, 3).referenced_indices() == frozenset({0, 3})
        assert equals_const(2, 9).referenced_indices() == frozenset({2})

    def test_shifted(self):
        assert equals(0, 1).shifted(2) == equals(2, 3)

    def test_shift_does_not_touch_constants(self):
        condition = equals_const(1, 5).shifted(3)
        assert condition == equals_const(4, 5)

    def test_remapped(self):
        assert equals(0, 1).remapped({0: 5, 1: 7}) == equals(5, 7)

    def test_str(self):
        assert str(equals(0, 1)) == "#0 = #1"


class TestBooleanConnectives:
    def test_and_evaluation(self):
        condition = And(equals(0, 1), equals_const(2, 5))
        assert condition.evaluate((1, 1, 5))
        assert not condition.evaluate((1, 2, 5))

    def test_or_evaluation(self):
        condition = Or(equals(0, 1), equals_const(2, 5))
        assert condition.evaluate((1, 2, 5))
        assert not condition.evaluate((1, 2, 6))

    def test_not_evaluation(self):
        condition = Not(equals(0, 1))
        assert condition.evaluate((1, 2))
        assert not condition.evaluate((1, 1))

    def test_true_false(self):
        assert TRUE.evaluate(())
        assert not FALSE.evaluate(())

    def test_negation_of_true_false(self):
        assert TRUE.negated() is FALSE
        assert FALSE.negated() is TRUE

    def test_double_negation(self):
        condition = Not(equals(0, 1))
        assert condition.negated() == equals(0, 1)

    def test_and_flattens(self):
        nested = And(And(equals(0, 1), equals(1, 2)), equals(2, 3))
        assert len(nested.operands) == 3

    def test_or_flattens(self):
        nested = Or(Or(equals(0, 1), equals(1, 2)), equals(2, 3))
        assert len(nested.operands) == 3

    def test_empty_and_rejected(self):
        with pytest.raises(ConditionError):
            And()

    def test_empty_or_rejected(self):
        with pytest.raises(ConditionError):
            Or()

    def test_and_referenced_indices(self):
        condition = And(equals(0, 4), equals_const(2, "x"))
        assert condition.referenced_indices() == frozenset({0, 2, 4})

    def test_and_shift_and_remap(self):
        condition = And(equals(0, 1), equals(2, 3))
        assert condition.shifted(1) == And(equals(1, 2), equals(3, 4))
        assert condition.remapped({0: 3, 1: 2, 2: 1, 3: 0}) == And(equals(3, 2), equals(1, 0))

    def test_max_index(self):
        assert And(equals(0, 5), equals(1, 2)).max_index() == 5
        assert TRUE.max_index() == -1


class TestHelpers:
    def test_conjunction_empty_is_true(self):
        assert conjunction([]) is TRUE

    def test_conjunction_single(self):
        assert conjunction([equals(0, 1)]) == equals(0, 1)

    def test_conjunction_many(self):
        condition = conjunction([equals(0, 1), equals(1, 2)])
        assert isinstance(condition, And)

    def test_conjunction_drops_true(self):
        assert conjunction([TRUE, equals(0, 1)]) == equals(0, 1)

    def test_disjunction_empty_is_false(self):
        assert disjunction([]) is FALSE

    def test_disjunction_many(self):
        assert isinstance(disjunction([equals(0, 1), equals(1, 2)]), Or)
