"""Tests for algebraic simplification (D- and ∅-identities and friends)."""

import pytest

from repro.algebra.conditions import FALSE, TRUE, equals, equals_const
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Intersection,
    Projection,
    Relation,
    Selection,
    Union,
)
from repro.algebra.evaluation import evaluate
from repro.algebra.simplify import (
    is_trivially_satisfied,
    simplify_constraint,
    simplify_constraint_set,
    simplify_expression,
)
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.operators.registry import default_registry
from repro.schema.instance import Instance

R = Relation("R", 2)
S = Relation("S", 2)


class TestDomainIdentities:
    def test_union_with_domain(self):
        assert simplify_expression(Union(R, Domain(2))) == Domain(2)
        assert simplify_expression(Union(Domain(2), R)) == Domain(2)

    def test_intersection_with_domain(self):
        assert simplify_expression(Intersection(R, Domain(2))) == R
        assert simplify_expression(Intersection(Domain(2), R)) == R

    def test_difference_with_domain(self):
        assert simplify_expression(Difference(R, Domain(2))) == Empty(2)

    def test_projection_of_domain_distinct(self):
        assert simplify_expression(Projection(Domain(3), (0, 2))) == Domain(2)

    def test_projection_of_domain_with_duplicates_not_rewritten(self):
        # π_{0,0}(D^1) is a diagonal, not D^2: the rewrite must NOT fire.
        expression = Projection(Domain(1), (0, 0))
        assert simplify_expression(expression) == expression

    def test_product_of_domains(self):
        assert simplify_expression(CrossProduct(Domain(1), Domain(2))) == Domain(3)


class TestEmptyIdentities:
    def test_union_with_empty(self):
        assert simplify_expression(Union(R, Empty(2))) == R
        assert simplify_expression(Union(Empty(2), R)) == R

    def test_intersection_with_empty(self):
        assert simplify_expression(Intersection(R, Empty(2))) == Empty(2)

    def test_difference_with_empty(self):
        assert simplify_expression(Difference(R, Empty(2))) == R
        assert simplify_expression(Difference(Empty(2), R)) == Empty(2)

    def test_product_with_empty(self):
        assert simplify_expression(CrossProduct(R, Empty(1))) == Empty(3)

    def test_selection_of_empty(self):
        assert simplify_expression(Selection(Empty(2), equals(0, 1))) == Empty(2)

    def test_projection_of_empty(self):
        assert simplify_expression(Projection(Empty(3), (0,))) == Empty(1)


class TestStructuralSimplifications:
    def test_idempotent_union(self):
        assert simplify_expression(Union(R, R)) == R

    def test_idempotent_intersection(self):
        assert simplify_expression(Intersection(R, R)) == R

    def test_self_difference(self):
        assert simplify_expression(Difference(R, R)) == Empty(2)

    def test_true_selection_dropped(self):
        assert simplify_expression(Selection(R, TRUE)) == R

    def test_false_selection_is_empty(self):
        assert simplify_expression(Selection(R, FALSE)) == Empty(2)

    def test_nested_selections_merge(self):
        expression = Selection(Selection(R, equals_const(0, 1)), equals_const(1, 2))
        simplified = simplify_expression(expression)
        assert isinstance(simplified, Selection)
        assert not isinstance(simplified.child, Selection)

    def test_identity_projection_dropped(self):
        assert simplify_expression(Projection(R, (0, 1))) == R

    def test_nested_projections_compose(self):
        expression = Projection(Projection(R, (1, 0)), (1,))
        assert simplify_expression(expression) == Projection(R, (0,))

    def test_simplification_cascades(self):
        expression = Union(Intersection(R, Domain(2)), Empty(2))
        assert simplify_expression(expression) == R

    def test_registry_rule_applied(self):
        from repro.algebra.expressions import SemiJoin

        expression = SemiJoin(R, Empty(2), equals(0, 2))
        assert simplify_expression(expression, default_registry()) == Empty(2)

    def test_plain_expression_unchanged(self):
        expression = Union(R, S)
        assert simplify_expression(expression) == expression


class TestSemanticPreservation:
    @pytest.mark.parametrize(
        "expression",
        [
            Union(R, Empty(2)),
            Intersection(R, Domain(2)),
            Difference(R, Domain(2)),
            Union(Intersection(R, Domain(2)), Empty(2)),
            Projection(Projection(CrossProduct(R, S), (0, 1, 3)), (2, 0)),
            Selection(Selection(R, equals_const(0, 1)), equals_const(1, 2)),
        ],
    )
    def test_simplify_preserves_semantics(self, expression):
        instance = Instance({"R": {(1, 2), (2, 2)}, "S": {(2, 2), (3, 1)}})
        assert evaluate(simplify_expression(expression), instance) == evaluate(
            expression, instance
        )


class TestConstraintSimplification:
    def test_trivial_containment_detected(self):
        assert is_trivially_satisfied(ContainmentConstraint(R, R))
        assert is_trivially_satisfied(ContainmentConstraint(Empty(2), R))
        assert is_trivially_satisfied(ContainmentConstraint(R, Domain(2)))
        assert not is_trivially_satisfied(ContainmentConstraint(R, S))

    def test_trivial_equality_detected(self):
        assert is_trivially_satisfied(EqualityConstraint(R, R))
        assert not is_trivially_satisfied(EqualityConstraint(R, S))

    def test_simplify_constraint_both_sides(self):
        constraint = ContainmentConstraint(Union(R, Empty(2)), Intersection(S, Domain(2)))
        assert simplify_constraint(constraint) == ContainmentConstraint(R, S)

    def test_simplify_constraint_preserves_kind(self):
        constraint = EqualityConstraint(Union(R, Empty(2)), S)
        simplified = simplify_constraint(constraint)
        assert isinstance(simplified, EqualityConstraint)

    def test_simplify_constraint_set_drops_trivial(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(R, Domain(2)),
                ContainmentConstraint(Union(R, Empty(2)), S),
            ]
        )
        simplified = simplify_constraint_set(constraints)
        assert list(simplified) == [ContainmentConstraint(R, S)]

    def test_simplify_constraint_set_keep_trivial(self):
        constraints = ConstraintSet([ContainmentConstraint(R, Domain(2))])
        kept = simplify_constraint_set(constraints, drop_trivial=False)
        assert len(kept) == 1


class TestRegistryVersionInvalidation:
    """Registering a rule mid-run must invalidate 'already simplified' marks."""

    def test_new_rule_applies_after_registration(self):
        from repro.algebra import interning
        from repro.operators.registry import OperatorRegistry

        registry = OperatorRegistry()
        constraints = ConstraintSet([ContainmentConstraint(Union(R, R), S)])
        with interning.shared_expression_cache():
            first = simplify_constraint_set(constraints, registry)
            # ∪ is idempotent, so the built-in rules already collapse R ∪ R.
            assert list(first) == [ContainmentConstraint(R, S)]

            # A (contrived) rule rewriting the bare relation R to T.
            def rewrite_r(node):
                if isinstance(node, Relation) and node.name == "R":
                    return Relation("T", 2)
                return None

            registry.register_operator(Relation, simplification_rule=rewrite_r)
            second = simplify_constraint_set(first, registry)
            assert list(second) == [
                ContainmentConstraint(Relation("T", 2), S)
            ]
