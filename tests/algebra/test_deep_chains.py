"""Regression tests for deep expression chains (satellite of the DAG-rewriter PR).

Left-normalization collapses bounds into ``E1 ∩ E2 ∩ …`` chains and
right-normalization into ``E1 ∪ E2 ∪ …`` chains; at scale those chains reach
thousands of nodes.  The recursive traversal helpers used to blow Python's
recursion limit around depth ~1000; everything here must work comfortably at
5,000 nodes.
"""

import sys

import pytest

from repro.algebra import interning, traversal
from repro.algebra.expressions import Relation, Selection, Union
from repro.algebra.conditions import TrueCondition
from repro.algebra.simplify import simplify_expression
from repro.algebra.summary import node_summary

DEPTH = 5_000


def _union_chain(depth: int, name: str = "R"):
    expression = Relation(name, 2)
    for _ in range(depth - 1):
        expression = Union(expression, Relation(name, 2))
    return expression


@pytest.fixture(scope="module")
def deep_chain():
    assert DEPTH > sys.getrecursionlimit()
    return _union_chain(DEPTH)


class TestDeepChains:
    def test_operator_count_is_iterative(self, deep_chain):
        assert traversal.operator_count(deep_chain) == DEPTH - 1

    def test_expression_depth_is_iterative(self, deep_chain):
        assert traversal.expression_depth(deep_chain) == DEPTH

    def test_node_count_and_names(self, deep_chain):
        assert traversal.node_count(deep_chain) == 2 * DEPTH - 1
        assert traversal.relation_names(deep_chain) == frozenset({"R"})

    def test_transform_bottom_up_is_iterative(self):
        chain = _union_chain(DEPTH)
        renamed = traversal.transform_bottom_up(
            chain,
            lambda node: Relation("S", 2)
            if isinstance(node, Relation) and node.name == "R"
            else node,
        )
        assert traversal.relation_names(renamed) == frozenset({"S"})
        assert traversal.operator_count(renamed) == DEPTH - 1

    def test_substitution_is_iterative(self):
        chain = _union_chain(DEPTH)
        substituted = traversal.substitute_relation(chain, "R", Relation("T", 2))
        assert traversal.relation_names(substituted) == frozenset({"T"})

    def test_hashing_after_summary_is_shallow(self):
        chain = _union_chain(DEPTH)
        node_summary(chain)  # warms hashes bottom-up without recursion
        assert isinstance(hash(chain), int)

    def test_simplify_deep_selection_chain(self):
        # σ_true(σ_true(...(R))) collapses to R no matter how deep.
        expression = Relation("R", 2)
        for _ in range(DEPTH):
            expression = Selection(expression, TrueCondition())
        assert simplify_expression(expression) == Relation("R", 2)

    def test_simplify_deep_chain_with_cache(self):
        expression = Relation("R", 2)
        for _ in range(DEPTH):
            expression = Selection(expression, TrueCondition())
        with interning.shared_expression_cache():
            assert simplify_expression(expression) == Relation("R", 2)

    def test_intern_deep_chain(self):
        chain = _union_chain(DEPTH)
        cache = interning.ExpressionCache()
        canonical = cache.intern(chain)
        assert canonical == chain
        # A second structurally equal chain collapses onto the canonical one.
        assert cache.intern(_union_chain(DEPTH)) is canonical
