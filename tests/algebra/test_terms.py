"""Tests for terms (attributes, constants, NULL)."""

import pytest

from repro.algebra.terms import NULL, Attribute, Constant, NullValue, resolve_term
from repro.exceptions import ConditionError


class TestAttribute:
    def test_valid_index(self):
        assert Attribute(0).index == 0
        assert Attribute(7).index == 7

    def test_negative_index_rejected(self):
        with pytest.raises(ConditionError):
            Attribute(-1)

    def test_non_int_index_rejected(self):
        with pytest.raises(ConditionError):
            Attribute("0")

    def test_bool_index_rejected(self):
        with pytest.raises(ConditionError):
            Attribute(True)

    def test_shifted(self):
        assert Attribute(2).shifted(3) == Attribute(5)

    def test_remapped(self):
        assert Attribute(1).remapped({1: 4}) == Attribute(4)

    def test_remapped_missing_raises(self):
        with pytest.raises(ConditionError):
            Attribute(1).remapped({0: 4})

    def test_str(self):
        assert str(Attribute(3)) == "#3"

    def test_equality_and_hash(self):
        assert Attribute(1) == Attribute(1)
        assert hash(Attribute(1)) == hash(Attribute(1))
        assert Attribute(1) != Attribute(2)

    def test_ordering(self):
        assert Attribute(1) < Attribute(2)


class TestConstant:
    def test_values(self):
        assert Constant(5).value == 5
        assert Constant("x").value == "x"

    def test_unhashable_rejected(self):
        with pytest.raises(ConditionError):
            Constant([1, 2])

    def test_str_string_quoted(self):
        assert str(Constant("abc")) == "'abc'"

    def test_str_number(self):
        assert str(Constant(7)) == "7"


class TestResolveTerm:
    def test_attribute_resolution(self):
        assert resolve_term(Attribute(1), (10, 20, 30)) == 20

    def test_constant_resolution(self):
        assert resolve_term(Constant("k"), (1, 2)) == "k"

    def test_out_of_range(self):
        with pytest.raises(ConditionError):
            resolve_term(Attribute(5), (1, 2))

    def test_not_a_term(self):
        with pytest.raises(ConditionError):
            resolve_term("bogus", (1, 2))


class TestNull:
    def test_singleton(self):
        assert NullValue() is NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"
