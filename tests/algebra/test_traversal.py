"""Tests for generic traversal, substitution and size metrics."""

import pytest

from repro.algebra import traversal
from repro.algebra.conditions import equals
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Projection,
    Relation,
    Selection,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.exceptions import ArityError


@pytest.fixture
def sample():
    r, s = Relation("R", 2), Relation("S", 2)
    return Projection(Selection(CrossProduct(r, Union(s, r)), equals(0, 2)), (0, 3))


class TestWalk:
    def test_walk_visits_every_node(self, sample):
        nodes = list(traversal.walk(sample))
        assert len(nodes) == 7

    def test_walk_preorder_root_first(self, sample):
        nodes = list(traversal.walk(sample))
        assert nodes[0] is sample

    def test_walk_single_leaf(self):
        assert list(traversal.walk(Relation("R", 1))) == [Relation("R", 1)]


class TestSubstitution:
    def test_substitute_relation(self, sample):
        replacement = Difference(Relation("T", 2), Relation("U", 2))
        rewritten = traversal.substitute_relation(sample, "S", replacement)
        assert not traversal.contains_relation(rewritten, "S")
        assert traversal.contains_relation(rewritten, "T")

    def test_substitute_preserves_structure_elsewhere(self, sample):
        rewritten = traversal.substitute_relation(sample, "S", Relation("S", 2))
        assert rewritten == sample

    def test_substitute_arity_mismatch_rejected(self, sample):
        with pytest.raises(ArityError):
            traversal.substitute_relation(sample, "S", Relation("T", 3))

    def test_substitute_relations_multiple(self):
        expression = Union(Relation("A", 1), Relation("B", 1))
        rewritten = traversal.substitute_relations(
            expression, {"A": Relation("X", 1), "B": Relation("Y", 1)}
        )
        assert rewritten == Union(Relation("X", 1), Relation("Y", 1))

    def test_substitution_is_not_recursive(self):
        # Replacing S by an expression that mentions S must not loop.
        expression = Relation("S", 2)
        replacement = Union(Relation("S", 2), Relation("T", 2))
        assert traversal.substitute_relation(expression, "S", replacement) == replacement


class TestQueries:
    def test_relation_names(self, sample):
        assert traversal.relation_names(sample) == frozenset({"R", "S"})

    def test_contains_relation(self, sample):
        assert traversal.contains_relation(sample, "R")
        assert not traversal.contains_relation(sample, "Z")

    def test_relation_occurrences(self, sample):
        assert traversal.relation_occurrences(sample, "R") == 2
        assert traversal.relation_occurrences(sample, "S") == 1

    def test_skolem_functions(self):
        f = SkolemFunction("f", (0,))
        expression = SkolemApplication(Relation("R", 2), f)
        assert traversal.skolem_functions(expression) == frozenset({f})
        assert traversal.contains_skolem(expression)
        assert not traversal.contains_skolem(Relation("R", 2))

    def test_contains_domain_and_empty(self):
        assert traversal.contains_domain(Union(Domain(2), Relation("R", 2)))
        assert not traversal.contains_domain(Relation("R", 2))
        assert traversal.contains_empty(Difference(Relation("R", 2), Empty(2)))
        assert not traversal.contains_empty(Relation("R", 2))


class TestMetrics:
    def test_operator_count_ignores_leaves(self, sample):
        assert traversal.operator_count(sample) == 4
        assert traversal.operator_count(Relation("R", 2)) == 0

    def test_node_count(self, sample):
        assert traversal.node_count(sample) == 7

    def test_expression_depth(self, sample):
        assert traversal.expression_depth(sample) == 5
        assert traversal.expression_depth(Relation("R", 2)) == 1


class TestTransform:
    def test_transform_bottom_up_rebuilds(self):
        expression = Union(Relation("A", 1), Relation("B", 1))

        def rename(node):
            if isinstance(node, Relation):
                return Relation(node.name.lower(), node.arity)
            return node

        assert traversal.transform_bottom_up(expression, rename) == Union(
            Relation("a", 1), Relation("b", 1)
        )

    def test_transform_identity_returns_equal_tree(self, sample):
        assert traversal.transform_bottom_up(sample, lambda node: node) == sample
