"""Tests for the expression AST: construction, arity rules, children rebuilding."""

import pytest

from repro.algebra.conditions import TRUE, equals
from repro.algebra.expressions import (
    AntiSemiJoin,
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    SemiJoin,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.exceptions import ArityError, ExpressionError


class TestLeaves:
    def test_relation_arity(self):
        assert Relation("R", 3).arity == 3

    def test_relation_requires_positive_arity(self):
        with pytest.raises(ArityError):
            Relation("R", 0)

    def test_relation_requires_name(self):
        with pytest.raises(ExpressionError):
            Relation("", 2)

    def test_relation_is_leaf(self):
        assert Relation("R", 2).is_leaf()

    def test_domain(self):
        assert Domain(3).arity == 3
        with pytest.raises(ArityError):
            Domain(0)

    def test_empty(self):
        assert Empty(2).arity == 2
        with pytest.raises(ArityError):
            Empty(-1)

    def test_constant_relation(self):
        constant = ConstantRelation.singleton("a", 1)
        assert constant.arity == 2
        assert constant.tuples == (("a", 1),)

    def test_constant_relation_mixed_width_rejected(self):
        with pytest.raises(ArityError):
            ConstantRelation(tuples=((1,), (1, 2)), constant_arity=1)

    def test_constant_relation_empty_row_rejected(self):
        with pytest.raises(ExpressionError):
            ConstantRelation.singleton()

    def test_leaves_reject_children(self):
        with pytest.raises(ExpressionError):
            Relation("R", 2).with_children((Relation("S", 2),))

    def test_equality_and_hash(self):
        assert Relation("R", 2) == Relation("R", 2)
        assert hash(Domain(2)) == hash(Domain(2))
        assert Relation("R", 2) != Relation("R", 3)


class TestSameArityOperators:
    def test_union_arity(self, r2, s2):
        assert Union(r2, s2).arity == 2

    def test_intersection_arity(self, r2, s2):
        assert Intersection(r2, s2).arity == 2

    def test_difference_arity(self, r2, s2):
        assert Difference(r2, s2).arity == 2

    @pytest.mark.parametrize("cls", [Union, Intersection, Difference])
    def test_mismatched_arity_rejected(self, cls, r2):
        with pytest.raises(ArityError):
            cls(r2, Relation("U", 1))

    @pytest.mark.parametrize("cls", [Union, Intersection, Difference])
    def test_non_expression_operand_rejected(self, cls, r2):
        with pytest.raises(ExpressionError):
            cls(r2, "not an expression")

    def test_children(self, r2, s2):
        union = Union(r2, s2)
        assert union.children == (r2, s2)

    def test_with_children(self, r2, s2, t2):
        union = Union(r2, s2)
        rebuilt = union.with_children((r2, t2))
        assert rebuilt == Union(r2, t2)

    def test_with_children_wrong_count(self, r2, s2):
        with pytest.raises(ExpressionError):
            Union(r2, s2).with_children((r2,))


class TestCrossProduct:
    def test_arity_is_sum(self, r2):
        assert CrossProduct(r2, Relation("U", 1)).arity == 3

    def test_with_children(self, r2, s2, t2):
        product = CrossProduct(r2, s2)
        assert product.with_children((t2, s2)) == CrossProduct(t2, s2)


class TestSelection:
    def test_preserves_arity(self, r2):
        assert Selection(r2, equals(0, 1)).arity == 2

    def test_condition_out_of_range(self, r2):
        with pytest.raises(ArityError):
            Selection(r2, equals(0, 5))

    def test_requires_condition(self, r2):
        with pytest.raises(ExpressionError):
            Selection(r2, "x = y")

    def test_true_condition_allowed(self, r2):
        assert Selection(r2, TRUE).arity == 2

    def test_with_children_preserves_condition(self, r2, s2):
        selection = Selection(r2, equals(0, 1))
        rebuilt = selection.with_children((s2,))
        assert rebuilt == Selection(s2, equals(0, 1))


class TestProjection:
    def test_arity_is_index_count(self, r2):
        assert Projection(r2, (0,)).arity == 1

    def test_can_reorder_and_duplicate(self, r2):
        assert Projection(r2, (1, 0, 1)).arity == 3

    def test_out_of_range_index(self, r2):
        with pytest.raises(ArityError):
            Projection(r2, (0, 2))

    def test_empty_indices_rejected(self, r2):
        with pytest.raises(ArityError):
            Projection(r2, ())

    def test_indices_normalized_to_ints(self, r2):
        assert Projection(r2, [1, 0]).indices == (1, 0)


class TestSkolem:
    def test_function_sorts_dependencies(self):
        assert SkolemFunction("f", (2, 0)).depends_on == (0, 2)

    def test_function_requires_name(self):
        with pytest.raises(ExpressionError):
            SkolemFunction("", (0,))

    def test_application_arity(self, r2):
        application = SkolemApplication(r2, SkolemFunction("f", (0, 1)))
        assert application.arity == 3

    def test_application_dependency_out_of_range(self, r2):
        with pytest.raises(ArityError):
            SkolemApplication(r2, SkolemFunction("f", (5,)))

    def test_application_with_children(self, r2, s2):
        function = SkolemFunction("f", (0,))
        application = SkolemApplication(r2, function)
        assert application.with_children((s2,)) == SkolemApplication(s2, function)


class TestExtendedOperators:
    def test_semijoin_arity(self, r2, s2):
        assert SemiJoin(r2, s2, equals(0, 2)).arity == 2

    def test_antisemijoin_arity(self, r2, s2):
        assert AntiSemiJoin(r2, s2, equals(0, 2)).arity == 2

    def test_leftouterjoin_arity(self, r2, s2):
        assert LeftOuterJoin(r2, s2, equals(0, 2)).arity == 4

    def test_condition_spans_both_operands(self, r2, s2):
        with pytest.raises(ArityError):
            SemiJoin(r2, s2, equals(0, 4))

    def test_with_children_keeps_condition(self, r2, s2, t2):
        join = LeftOuterJoin(r2, s2, equals(0, 2))
        rebuilt = join.with_children((t2, s2))
        assert rebuilt == LeftOuterJoin(t2, s2, equals(0, 2))


class TestStringRendering:
    def test_str_is_parseable_syntax(self, r2, s2):
        assert str(Union(r2, s2)) == "(R/2 union S/2)"

    def test_repr_contains_type(self, r2):
        assert "Relation" in repr(r2)


class TestStructuralEquality:
    """The iterative __eq__ must handle user-defined operator types too."""

    def test_user_defined_operator_equality(self):
        from dataclasses import dataclass
        from typing import Tuple

        from repro.algebra.expressions import Expression, Relation, Union

        @dataclass(frozen=True)
        class MyMerge(Expression):
            left: Expression
            right: Expression

            operator_name = "mymerge"

            @property
            def arity(self):
                return self.left.arity

            @property
            def children(self):
                return (self.left, self.right)

            def with_children(self, children: Tuple[Expression, ...]) -> Expression:
                return MyMerge(children[0], children[1])

        a = Union(MyMerge(Relation("R", 2), Relation("S", 2)), Relation("T", 2))
        b = Union(MyMerge(Relation("R", 2), Relation("S", 2)), Relation("T", 2))
        c = Union(MyMerge(Relation("R", 2), Relation("X", 2)), Relation("T", 2))
        assert a == b
        assert a != c
