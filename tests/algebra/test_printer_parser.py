"""Tests for the plain-text printer and parser (including round-trips)."""

import pytest

from repro.algebra.conditions import And, Comparison, Not, Or, TRUE, equals, equals_const
from repro.algebra.expressions import (
    AntiSemiJoin,
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    SemiJoin,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.algebra.parser import (
    parse_condition,
    parse_constraint,
    parse_constraints,
    parse_expression,
)
from repro.algebra.printer import condition_to_text, expression_to_text
from repro.algebra.terms import Attribute, Constant
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.exceptions import ParseError
from repro.schema.signature import Signature
from tests.conftest import expression_samples


class TestParserBasics:
    def test_parse_relation_with_inline_arity(self):
        assert parse_expression("R/3") == Relation("R", 3)

    def test_parse_relation_from_signature(self):
        signature = Signature.from_arities({"R": 4})
        assert parse_expression("R", signature) == Relation("R", 4)

    def test_parse_relation_without_arity_fails(self):
        with pytest.raises(ParseError):
            parse_expression("R")

    def test_parse_domain_and_empty(self):
        assert parse_expression("D(2)") == Domain(2)
        assert parse_expression("empty(3)") == Empty(3)

    def test_parse_constant_relation(self):
        expression = parse_expression("const((1, 'a'); (2, 'b'))")
        assert expression == ConstantRelation(tuples=((1, "a"), (2, "b")), constant_arity=2)

    def test_parse_binary_operators(self):
        assert parse_expression("(R/2 union S/2)") == Union(Relation("R", 2), Relation("S", 2))
        assert parse_expression("(R/2 intersect S/2)") == Intersection(
            Relation("R", 2), Relation("S", 2)
        )
        assert parse_expression("(R/2 - S/2)") == Difference(Relation("R", 2), Relation("S", 2))
        assert parse_expression("(R/2 x S/2)") == CrossProduct(Relation("R", 2), Relation("S", 2))

    def test_binary_chain_is_left_associative(self):
        expression = parse_expression("R/2 union S/2 union T/2")
        assert expression == Union(Union(Relation("R", 2), Relation("S", 2)), Relation("T", 2))

    def test_parse_select(self):
        expression = parse_expression("select[#0 = #1](R/2)")
        assert expression == Selection(Relation("R", 2), equals(0, 1))

    def test_parse_project(self):
        assert parse_expression("project[1,0](R/2)") == Projection(Relation("R", 2), (1, 0))

    def test_parse_skolem(self):
        expression = parse_expression("skolem f[0](R/2)")
        assert expression == SkolemApplication(Relation("R", 2), SkolemFunction("f", (0,)))

    def test_parse_extended_operators(self):
        assert parse_expression("semijoin[#0 = #2](R/2, S/2)") == SemiJoin(
            Relation("R", 2), Relation("S", 2), equals(0, 2)
        )
        assert parse_expression("antisemijoin[#0 = #2](R/2, S/2)") == AntiSemiJoin(
            Relation("R", 2), Relation("S", 2), equals(0, 2)
        )
        assert parse_expression("leftouterjoin[#0 = #2](R/2, S/2)") == LeftOuterJoin(
            Relation("R", 2), Relation("S", 2), equals(0, 2)
        )

    def test_reserved_word_as_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("select/2")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_expression("(R/2 union S/2")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("R/2 @@ S/2")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("R/2 S/2")


class TestConditionParsing:
    def test_parse_comparison(self):
        assert parse_condition("#0 = 5") == equals_const(0, 5)

    def test_parse_string_constant(self):
        assert parse_condition("#1 = 'abc'") == equals_const(1, "abc")

    def test_parse_escaped_string(self):
        condition = parse_condition(r"#0 = 'it\'s'")
        assert condition == equals_const(0, "it's")

    def test_parse_float(self):
        assert parse_condition("#0 = 1.5") == equals_const(0, 1.5)

    def test_parse_negative_number(self):
        assert parse_condition("#0 = -3") == equals_const(0, -3)

    def test_parse_and_or_not(self):
        condition = parse_condition("#0 = #1 and (not (#1 = 3) or true)")
        assert isinstance(condition, And)
        assert isinstance(condition.operands[1], Or)
        assert isinstance(condition.operands[1].operands[0], Not)

    def test_parse_true_false(self):
        assert parse_condition("true") is TRUE or parse_condition("true") == TRUE

    def test_all_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            assert parse_condition(f"#0 {op} #1") == Comparison(Attribute(0), op, Attribute(1))


class TestConstraintParsing:
    def test_containment(self):
        constraint = parse_constraint("R/2 <= S/2")
        assert constraint == ContainmentConstraint(Relation("R", 2), Relation("S", 2))

    def test_reverse_containment(self):
        constraint = parse_constraint("R/2 >= S/2")
        assert constraint == ContainmentConstraint(Relation("S", 2), Relation("R", 2))

    def test_equality(self):
        constraint = parse_constraint("R/2 = S/2")
        assert constraint == EqualityConstraint(Relation("R", 2), Relation("S", 2))

    def test_missing_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("R/2 S/2")

    def test_parse_constraints_multi_line(self):
        text = """
        # a comment
        R/2 <= S/2

        S/2 <= T/2
        """
        constraints = parse_constraints(text)
        assert len(constraints) == 2


class TestRoundTrip:
    @pytest.mark.parametrize("expression", expression_samples(include_extended=True))
    def test_expression_roundtrip(self, expression):
        assert parse_expression(expression_to_text(expression)) == expression

    def test_condition_roundtrip(self):
        condition = And(equals(0, 1), Or(Not(equals_const(2, "x")), equals_const(0, 3)))
        assert parse_condition(condition_to_text(condition)) == condition

    def test_skolem_roundtrip(self):
        expression = SkolemApplication(
            Projection(Relation("R", 3), (0, 2)), SkolemFunction("sk1", (0, 1))
        )
        assert parse_expression(expression_to_text(expression)) == expression

    def test_constant_relation_roundtrip(self):
        expression = ConstantRelation(tuples=(("a", 1), ("b", 2)), constant_arity=2)
        assert parse_expression(expression_to_text(expression)) == expression

    def test_constraint_roundtrip(self):
        constraint = ContainmentConstraint(
            Projection(Selection(Relation("Movies", 6), equals_const(3, 5)), (0, 1, 2)),
            Relation("FiveStarMovies", 3),
        )
        assert parse_constraint(str(constraint)) == constraint
