"""Property-based tests (Hypothesis) for the algebra core.

Strategies build random expressions over a fixed small signature and random
small instances; the properties assert that

* the printer/parser round-trip is the identity,
* simplification never changes the semantics of an expression,
* evaluation respects basic well-formedness (arity of produced tuples).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algebra.conditions import And, Comparison, Not, Or
from repro.algebra.evaluation import evaluate
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    Projection,
    Relation,
    Selection,
    Union,
)
from repro.algebra.parser import parse_expression
from repro.algebra.printer import expression_to_text
from repro.algebra.simplify import simplify_expression
from repro.algebra.terms import Attribute, Constant
from repro.schema.instance import Instance
from repro.schema.signature import Signature

#: The relations random expressions draw from.
BASE_RELATIONS = {"R": 2, "S": 2, "T": 1}
SIGNATURE = Signature.from_arities(BASE_RELATIONS)
DOMAIN_VALUES = [0, 1, 2]


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def conditions(arity: int) -> st.SearchStrategy:
    """Random conditions over tuples of the given arity."""
    indices = st.integers(min_value=0, max_value=arity - 1)
    terms = st.one_of(indices.map(Attribute), st.sampled_from(DOMAIN_VALUES).map(Constant))
    comparisons = st.builds(
        Comparison, terms, st.sampled_from(["=", "!=", "<", "<="]), terms
    )
    return st.recursive(
        comparisons,
        lambda children: st.one_of(
            st.builds(lambda a, b: And(a, b), children, children),
            st.builds(lambda a, b: Or(a, b), children, children),
            children.map(Not),
        ),
        max_leaves=4,
    )


def leaf_expressions() -> st.SearchStrategy:
    relations = st.sampled_from(
        [Relation(name, arity) for name, arity in BASE_RELATIONS.items()]
    )
    specials = st.sampled_from([Domain(1), Domain(2), Empty(1), Empty(2)])
    return st.one_of(relations, specials)


@st.composite
def expressions(draw, max_depth: int = 3) -> Expression:
    """Random well-formed expressions of bounded depth and arity."""
    if max_depth == 0:
        return draw(leaf_expressions())
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice == 0:
        return draw(leaf_expressions())
    if choice in (1, 2, 3):
        left = draw(expressions(max_depth=max_depth - 1))
        right = draw(expressions(max_depth=max_depth - 1))
        if left.arity != right.arity:
            # Make the arities agree by projecting the wider one.
            wide, narrow = (left, right) if left.arity > right.arity else (right, left)
            wide = Projection(wide, tuple(range(narrow.arity)))
            left, right = (wide, narrow) if left.arity > right.arity else (narrow, wide)
        constructor = (Union, Intersection, Difference)[choice - 1]
        return constructor(left, right)
    if choice == 4:
        left = draw(expressions(max_depth=max_depth - 1))
        right = draw(expressions(max_depth=max_depth - 1))
        if left.arity + right.arity > 4:
            return left
        return CrossProduct(left, right)
    if choice == 5:
        child = draw(expressions(max_depth=max_depth - 1))
        condition = draw(conditions(child.arity))
        return Selection(child, condition)
    child = draw(expressions(max_depth=max_depth - 1))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=child.arity - 1), min_size=1, max_size=3
        )
    )
    return Projection(child, tuple(indices))


@st.composite
def instances(draw) -> Instance:
    """Random small instances over the fixed signature."""
    contents = {}
    for name, arity in BASE_RELATIONS.items():
        rows = draw(
            st.sets(
                st.tuples(*([st.sampled_from(DOMAIN_VALUES)] * arity)), max_size=4
            )
        )
        contents[name] = rows
    return Instance(contents, SIGNATURE)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(expressions())
def test_printer_parser_roundtrip(expression):
    assert parse_expression(expression_to_text(expression)) == expression


@settings(max_examples=60, deadline=None)
@given(expressions(), instances())
def test_simplification_preserves_semantics(expression, instance):
    simplified = simplify_expression(expression)
    assert evaluate(simplified, instance) == evaluate(expression, instance)


@settings(max_examples=60, deadline=None)
@given(expressions(), instances())
def test_evaluation_respects_arity(expression, instance):
    rows = evaluate(expression, instance)
    assert all(len(row) == expression.arity for row in rows)


@settings(max_examples=40, deadline=None)
@given(expressions(), instances())
def test_evaluation_is_deterministic(expression, instance):
    assert evaluate(expression, instance) == evaluate(expression, instance)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_domain_contains_every_relation_projection(instance):
    domain = evaluate(Domain(1), instance)
    for name, arity in BASE_RELATIONS.items():
        for column in range(arity):
            projected = evaluate(Projection(Relation(name, arity), (column,)), instance)
            assert projected <= domain
