"""Tests for the set-semantics evaluator."""

import pytest

from repro.algebra.conditions import equals, equals_const
from repro.algebra.evaluation import Evaluator, SkolemInterpretation, evaluate
from repro.algebra.expressions import (
    AntiSemiJoin,
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    SemiJoin,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.algebra.terms import NULL
from repro.exceptions import EvaluationError
from repro.schema.instance import Instance


@pytest.fixture
def instance():
    return Instance(
        {
            "R": {(1, 2), (2, 3)},
            "S": {(2, 3), (4, 5)},
            "U": {(1,), (4,)},
        }
    )


R = Relation("R", 2)
S = Relation("S", 2)
U = Relation("U", 1)


class TestBasicOperators:
    def test_relation(self, instance):
        assert evaluate(R, instance) == frozenset({(1, 2), (2, 3)})

    def test_missing_relation_is_empty(self, instance):
        assert evaluate(Relation("Z", 2), instance) == frozenset()

    def test_relation_arity_mismatch_raises(self, instance):
        with pytest.raises(EvaluationError):
            evaluate(Relation("R", 3), instance)

    def test_union(self, instance):
        assert evaluate(Union(R, S), instance) == frozenset({(1, 2), (2, 3), (4, 5)})

    def test_intersection(self, instance):
        assert evaluate(Intersection(R, S), instance) == frozenset({(2, 3)})

    def test_difference(self, instance):
        assert evaluate(Difference(R, S), instance) == frozenset({(1, 2)})

    def test_cross_product(self, instance):
        result = evaluate(CrossProduct(U, U), instance)
        assert result == frozenset({(1, 1), (1, 4), (4, 1), (4, 4)})

    def test_selection_attribute(self, instance):
        assert evaluate(Selection(R, equals_const(0, 2)), instance) == frozenset({(2, 3)})

    def test_selection_join_condition(self, instance):
        joined = Selection(CrossProduct(R, S), equals(1, 2))
        assert evaluate(joined, instance) == frozenset({(1, 2, 2, 3)})

    def test_projection(self, instance):
        assert evaluate(Projection(R, (1,)), instance) == frozenset({(2,), (3,)})

    def test_projection_reorder_duplicate(self, instance):
        assert evaluate(Projection(R, (1, 0, 1)), instance) == frozenset(
            {(2, 1, 2), (3, 2, 3)}
        )

    def test_empty(self, instance):
        assert evaluate(Empty(2), instance) == frozenset()

    def test_constant_relation(self, instance):
        assert evaluate(ConstantRelation.singleton("c"), instance) == frozenset({("c",)})


class TestDomain:
    def test_active_domain_unary(self, instance):
        domain = evaluate(Domain(1), instance)
        assert domain == frozenset({(v,) for v in (1, 2, 3, 4, 5)})

    def test_active_domain_binary_size(self, instance):
        assert len(evaluate(Domain(2), instance)) == 25

    def test_extra_domain_values(self, instance):
        domain = evaluate(Domain(1), instance, extra_domain=["x"])
        assert ("x",) in domain

    def test_domain_size_limit(self, instance):
        with pytest.raises(EvaluationError):
            evaluate(Domain(3), instance, max_tuples=10)

    def test_product_size_limit(self, instance):
        with pytest.raises(EvaluationError):
            evaluate(CrossProduct(Domain(2), Domain(2)), instance, max_tuples=100)


class TestSkolemEvaluation:
    def test_requires_interpretation(self, instance):
        expression = SkolemApplication(R, SkolemFunction("f", (0,)))
        with pytest.raises(EvaluationError):
            evaluate(expression, instance)

    def test_with_interpretation(self, instance):
        expression = SkolemApplication(R, SkolemFunction("f", (0,)))
        skolems = SkolemInterpretation(functions={"f": lambda args: args[0] * 10})
        result = evaluate(expression, instance, skolems=skolems)
        assert result == frozenset({(1, 2, 10), (2, 3, 20)})

    def test_default_interpretation(self, instance):
        expression = SkolemApplication(R, SkolemFunction("g", (0, 1)))
        skolems = SkolemInterpretation(default=lambda name, args: (name, args))
        result = evaluate(expression, instance, skolems=skolems)
        assert (1, 2, ("g", (1, 2))) in result


class TestExtendedOperators:
    def test_semijoin(self, instance):
        # R rows whose second column appears as S's first column.
        expression = SemiJoin(R, S, equals(1, 2))
        assert evaluate(expression, instance) == frozenset({(1, 2), (2, 3)}) - frozenset(
            {(2, 3)}
        ) | frozenset({(1, 2)})

    def test_semijoin_simple(self):
        instance = Instance({"R": {(1,), (2,)}, "S": {(2,)}})
        expression = SemiJoin(Relation("R", 1), Relation("S", 1), equals(0, 1))
        assert evaluate(expression, instance) == frozenset({(2,)})

    def test_antisemijoin(self):
        instance = Instance({"R": {(1,), (2,)}, "S": {(2,)}})
        expression = AntiSemiJoin(Relation("R", 1), Relation("S", 1), equals(0, 1))
        assert evaluate(expression, instance) == frozenset({(1,)})

    def test_leftouterjoin_matching_and_padding(self):
        instance = Instance({"R": {(1,), (2,)}, "S": {(2, "x")}})
        expression = LeftOuterJoin(Relation("R", 1), Relation("S", 2), equals(0, 1))
        result = evaluate(expression, instance)
        assert (2, 2, "x") in result
        assert (1, NULL, NULL) in result
        assert len(result) == 2


class TestEvaluatorObject:
    def test_caching_returns_same_result(self, instance):
        evaluator = Evaluator(instance)
        first = evaluator.evaluate(Union(R, S))
        second = evaluator.evaluate(Union(R, S))
        assert first is second

    def test_active_domain_property(self, instance):
        evaluator = Evaluator(instance, extra_domain=["zz"])
        assert "zz" in evaluator.active_domain

    def test_unknown_expression_type_raises(self, instance):
        class Strange:
            pass

        with pytest.raises(EvaluationError):
            Evaluator(instance)._dispatch(Strange())


class TestAlgebraicIdentitiesSemantically:
    """Spot-check classical identities against the evaluator."""

    def test_difference_union_identity(self, instance):
        left = Difference(R, S)
        right = Union(S, Relation("T", 2))
        # A − B ⊆ C iff A ⊆ B ∪ C; verify on this instance for C = T (empty).
        lhs_holds = evaluate(Difference(R, S), instance) <= evaluate(Relation("T", 2), instance)
        rhs_holds = evaluate(R, instance) <= evaluate(Union(S, Relation("T", 2)), instance)
        assert lhs_holds == rhs_holds

    def test_projection_of_domain(self, instance):
        assert evaluate(Projection(Domain(2), (0,)), instance) == evaluate(Domain(1), instance)

    def test_selection_true_subset_of_domain(self, instance):
        assert evaluate(R, instance) <= evaluate(Domain(2), instance)
