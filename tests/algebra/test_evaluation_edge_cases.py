"""Edge-case tests for the :class:`Evaluator`.

Covers the corners the main evaluation suite skips: NULL padding from the
left outerjoin interacting with selection conditions, arity-zero special
relations, and the exact boundary behavior of the ``max_tuples`` safety limit.
"""

import pytest

from repro.algebra.conditions import Comparison, Not, equals, equals_const
from repro.algebra.evaluation import Evaluator
from repro.algebra.expressions import (
    CrossProduct,
    Domain,
    Empty,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
)
from repro.algebra.terms import Attribute, Constant, NULL
from repro.exceptions import ArityError, EvaluationError
from repro.schema.instance import Instance


class TestNullPaddingWithSelections:
    """NULL-padded outerjoin rows meet selection conditions (two-valued logic)."""

    @pytest.fixture
    def instance(self):
        return Instance(
            {
                "R": {(1, "a"), (2, "b")},
                "S": {(1, "x")},  # only R's row (1, 'a') has a join partner
            }
        )

    @pytest.fixture
    def outerjoin(self):
        return LeftOuterJoin(Relation("R", 2), Relation("S", 2), equals(0, 2))

    def test_unmatched_rows_are_null_padded(self, instance, outerjoin):
        rows = Evaluator(instance).evaluate(outerjoin)
        assert (1, "a", 1, "x") in rows
        assert (2, "b", NULL, NULL) in rows
        assert len(rows) == 2

    def test_equality_on_padded_column_drops_null_rows(self, instance, outerjoin):
        # NULL = 'x' is False, so only the matched row survives.
        selected = Selection(outerjoin, equals_const(3, "x"))
        assert Evaluator(instance).evaluate(selected) == frozenset({(1, "a", 1, "x")})

    def test_inequality_on_padded_column_also_drops_null_rows(self, instance, outerjoin):
        # NULL != 'x' is also False (SQL-style: NULL compares to nothing).
        selected = Selection(
            outerjoin, Comparison(Attribute(3), "!=", Constant("x"))
        )
        assert Evaluator(instance).evaluate(selected) == frozenset()

    def test_negated_equality_keeps_null_rows(self, instance, outerjoin):
        # Two-valued collapse: not(NULL = 'x') = not(False) = True, so the
        # padded row *passes* a negated equality — the documented difference
        # from SQL's three-valued logic.
        selected = Selection(outerjoin, Not(equals_const(3, "x")))
        assert Evaluator(instance).evaluate(selected) == frozenset(
            {(2, "b", NULL, NULL)}
        )

    def test_ordered_comparisons_never_match_null(self, instance, outerjoin):
        for op in ("<", ">"):
            selected = Selection(
                outerjoin, Comparison(Attribute(2), op, Constant(0))
            )
            rows = Evaluator(instance).evaluate(selected)
            assert all(row[2] is not NULL for row in rows)

    def test_projection_keeps_null_markers(self, instance, outerjoin):
        rows = Evaluator(instance).evaluate(Projection(outerjoin, (0, 2)))
        assert (2, NULL) in rows


class TestArityZeroRelations:
    """``D^0`` and friends: arity-zero special relations are rejected at
    construction time, so the evaluator never sees them."""

    def test_domain_zero_rejected(self):
        with pytest.raises(ArityError):
            Domain(0)

    def test_empty_zero_rejected(self):
        with pytest.raises(ArityError):
            Empty(0)

    def test_relation_zero_rejected(self):
        with pytest.raises(ArityError):
            Relation("R", 0)


class TestMaxTuplesBoundary:
    def test_relation_exactly_at_limit_passes(self):
        rows = {(i,) for i in range(10)}
        instance = Instance({"R": rows})
        result = Evaluator(instance, max_tuples=10).evaluate(Relation("R", 1))
        assert len(result) == 10

    def test_relation_one_past_limit_raises(self):
        rows = {(i,) for i in range(11)}
        instance = Instance({"R": rows})
        with pytest.raises(EvaluationError, match="exceeding the limit"):
            Evaluator(instance, max_tuples=10).evaluate(Relation("R", 1))

    def test_domain_exactly_at_limit_passes(self):
        instance = Instance({"R": {(0,), (1,), (2,)}})  # active domain size 3
        result = Evaluator(instance, max_tuples=9).evaluate(Domain(2))
        assert len(result) == 9

    def test_domain_one_past_limit_raises(self):
        instance = Instance({"R": {(0,), (1,), (2,)}})
        with pytest.raises(EvaluationError, match="limit"):
            Evaluator(instance, max_tuples=8).evaluate(Domain(2))

    def test_cross_product_exactly_at_limit_passes(self):
        instance = Instance({"R": {(0,), (1,)}, "S": {(0,), (1,), (2,)}})
        product = CrossProduct(Relation("R", 1), Relation("S", 1))
        result = Evaluator(instance, max_tuples=6).evaluate(product)
        assert len(result) == 6

    def test_cross_product_past_limit_raises(self):
        instance = Instance({"R": {(0,), (1,)}, "S": {(0,), (1,), (2,)}})
        product = CrossProduct(Relation("R", 1), Relation("S", 1))
        with pytest.raises(EvaluationError, match="cross product"):
            Evaluator(instance, max_tuples=5).evaluate(product)

    def test_limit_applies_to_intermediates_not_only_result(self):
        # The projection collapses to 2 rows, but the inner product exceeds
        # the budget and must already have been rejected.
        instance = Instance({"R": {(0,), (1,)}, "S": {(0,), (1,), (2,)}})
        expression = Projection(CrossProduct(Relation("R", 1), Relation("S", 1)), (0,))
        with pytest.raises(EvaluationError):
            Evaluator(instance, max_tuples=5).evaluate(expression)
