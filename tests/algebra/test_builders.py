"""Tests for the convenience expression builders."""

import pytest

from repro.algebra import builders
from repro.algebra.conditions import TRUE, equals
from repro.algebra.evaluation import evaluate
from repro.algebra.expressions import CrossProduct, Domain, Projection, Relation, Selection
from repro.exceptions import ArityError, ExpressionError
from repro.schema.instance import Instance


class TestBasicBuilders:
    def test_relation(self):
        assert builders.relation("R", 2) == Relation("R", 2)

    def test_project_collapses_identity(self, r2):
        assert builders.project(r2, (0, 1)) is r2

    def test_project_builds_projection(self, r2):
        assert builders.project(r2, (1,)) == Projection(r2, (1,))

    def test_select_collapses_true(self, r2):
        assert builders.select(r2, TRUE) is r2

    def test_select_builds_selection(self, r2):
        assert builders.select(r2, equals(0, 1)) == Selection(r2, equals(0, 1))

    def test_product(self, r2, s2):
        assert builders.product(r2, s2) == CrossProduct(r2, s2)

    def test_cross_product_all(self, r2, s2, t2):
        expression = builders.cross_product_all([r2, s2, t2])
        assert expression.arity == 6

    def test_cross_product_all_single(self, r2):
        assert builders.cross_product_all([r2]) is r2

    def test_cross_product_all_empty_rejected(self):
        with pytest.raises(ExpressionError):
            builders.cross_product_all([])


class TestJoins:
    def test_theta_join_keeps_all_columns(self, r2, s2):
        join = builders.theta_join(r2, s2, equals(0, 2))
        assert join.arity == 4

    def test_equijoin_with_keep(self, r2, s2):
        join = builders.equijoin(r2, s2, [(0, 0)], keep=[0, 1, 3])
        assert join.arity == 3

    def test_equijoin_semantics(self):
        instance = Instance({"R": {(1, "a"), (2, "b")}, "S": {(1, "x"), (3, "y")}})
        join = builders.equijoin(Relation("R", 2), Relation("S", 2), [(0, 0)], keep=[0, 1, 3])
        assert evaluate(join, instance) == frozenset({(1, "a", "x")})

    def test_natural_key_join_columns(self):
        s, t = Relation("S", 3), Relation("T", 2)
        join = builders.natural_key_join(s, t, 1)
        assert join.arity == 4

    def test_natural_key_join_semantics(self):
        instance = Instance({"S": {(1, "a", "b")}, "T": {(1, "z"), (2, "w")}})
        join = builders.natural_key_join(Relation("S", 3), Relation("T", 2), 1)
        assert evaluate(join, instance) == frozenset({(1, "a", "b", "z")})

    def test_natural_key_join_invalid_key_width(self, r2, s2):
        with pytest.raises(ArityError):
            builders.natural_key_join(r2, s2, 0)
        with pytest.raises(ArityError):
            builders.natural_key_join(r2, s2, 3)


class TestPaddingAndPlacement:
    def test_pad_right_with_domain(self, r2):
        padded = builders.pad_right_with_domain(r2, 2)
        assert padded == CrossProduct(r2, Domain(2))

    def test_pad_right_zero_is_identity(self, r2):
        assert builders.pad_right_with_domain(r2, 0) is r2

    def test_pad_left_with_domain(self, r2):
        assert builders.pad_left_with_domain(r2, 1) == CrossProduct(Domain(1), r2)

    def test_pad_negative_rejected(self, r2):
        with pytest.raises(ArityError):
            builders.pad_right_with_domain(r2, -1)

    def test_column_placement_identity(self, r2):
        placed = builders.column_placement(r2, (0, 1), 2)
        assert placed is r2

    def test_column_placement_semantics(self):
        # Place U's single column at position 1 of a 2-wide tuple.
        u = Relation("U", 1)
        placed = builders.column_placement(u, (1,), 2)
        instance = Instance({"U": {(7,)}, "V": {(1, 2)}})
        rows = evaluate(placed, instance)
        # Position 1 must carry the U value; position 0 ranges over the domain.
        assert all(row[1] == 7 for row in rows)
        assert len(rows) == len(instance.active_domain())

    def test_column_placement_validates_positions(self, r2):
        with pytest.raises(ArityError):
            builders.column_placement(r2, (0,), 3)
        with pytest.raises(ArityError):
            builders.column_placement(r2, (0, 0), 3)
        with pytest.raises(ArityError):
            builders.column_placement(r2, (0, 5), 3)
        with pytest.raises(ArityError):
            builders.column_placement(r2, (0, 1), 1)

    def test_key_equality_condition(self):
        condition = builders.key_equality_condition(3, 2)
        assert condition.evaluate((1, 2, 9, 1, 2, 8))
        assert not condition.evaluate((1, 2, 9, 1, 3, 8))

    def test_permute(self, r2):
        assert builders.permute(r2, (1, 0)) == Projection(r2, (1, 0))

    def test_identity_projection_explicit(self, r2):
        assert builders.identity_projection(r2) == Projection(r2, (0, 1))
