"""Incremental recomposition correctness.

The checkpoint store is a pure accelerator: every recomposition of an edited
chain must be byte-identical to composing the edited chain from scratch —
same constraints (to the printed text), same residual symbols, same
per-symbol outcomes — across randomized edit sequences and across the
serial/thread/process backends.  Checkpoints must also be *invalidated* by
anything that can change a composition's output: a different composer
configuration, a mutated operator registry (version bump), a different
residual-threading mode.
"""

import random

import pytest

from repro.compose.config import ComposerConfig
from repro.constraints.constraint_set import ConstraintSet
from repro.engine import (
    BatchComposer,
    BatchConfig,
    ChainGrower,
    CheckpointStore,
    EvolutionSession,
    IncrementalComposer,
    chain_tokens,
    compose_chain,
)
from repro.exceptions import EngineError
from repro.mapping.mapping import Mapping


def _fingerprint(result):
    return (
        result.constraints.to_text(),
        tuple(result.residual_symbols),
        tuple(
            (hop.attempted_symbols, hop.eliminated_symbols, hop.residual_symbols)
            for hop in result.hops
        ),
    )


def _variant(mapping, rng):
    """A same-signature mapping with structurally different constraints."""
    constraints = list(mapping.constraints)
    if len(constraints) > 1 and rng.random() < 0.5:
        rotation = rng.randrange(1, len(constraints))
        constraints = constraints[rotation:] + constraints[:rotation]
    else:
        constraints = constraints[:-1] if len(constraints) > 1 else constraints
    return Mapping(
        mapping.input_signature, mapping.output_signature, ConstraintSet(constraints)
    )


@pytest.fixture(scope="module")
def grown_chain():
    return ChainGrower(seed=321, schema_size=4).grow_many(8)


class TestIncrementalMatchesFromScratch:
    def test_append_sequence_byte_identical(self, grown_chain):
        composer = IncrementalComposer()
        for length in range(2, len(grown_chain) + 1):
            prefix = tuple(grown_chain[:length])
            incremental = composer.compose_chain(prefix)
            scratch = compose_chain(prefix)
            assert _fingerprint(incremental) == _fingerprint(scratch)
            # Every append replays exactly the one new hop.
            assert incremental.replayed_hops == 1
            assert incremental.reused_hops == length - 2

    def test_randomized_edit_sequences_byte_identical(self, grown_chain):
        rng = random.Random(99)
        composer = IncrementalComposer()
        mappings = list(grown_chain[:3])
        for _ in range(25):
            op = rng.choice(("append", "edit", "truncate"))
            if op == "append" and len(mappings) < len(grown_chain):
                # Extend towards the fully grown chain (keeps adjacency).
                mappings = list(grown_chain[: len(mappings) + 1])
            elif op == "edit":
                index = rng.randrange(len(mappings))
                mappings[index] = _variant(mappings[index], rng)
            else:
                if len(mappings) > 2:
                    mappings = mappings[:-1]
            # "append" after "edit"/"truncate" resets to the pristine prefix,
            # which doubles as a replace-suffix delta against the edited chain.
            incremental = composer.compose_chain(tuple(mappings))
            scratch = compose_chain(tuple(mappings))
            assert _fingerprint(incremental) == _fingerprint(scratch)

    def test_edit_reuses_prefix_before_the_edit(self, grown_chain):
        rng = random.Random(5)
        composer = IncrementalComposer()
        full = tuple(grown_chain)
        composer.compose_chain(full)
        for index in (1, 3, len(full) - 1):
            edited = list(full)
            edited[index] = _variant(edited[index], rng)
            result = composer.compose_chain(tuple(edited))
            # Mapping i is first consumed by hop i-1, so everything before
            # that is reused verbatim.
            assert result.reused_hops == index - 1
            assert _fingerprint(result) == _fingerprint(compose_chain(tuple(edited)))

    def test_identical_recomposition_replays_nothing(self, grown_chain):
        composer = IncrementalComposer()
        full = tuple(grown_chain)
        composer.compose_chain(full)
        again = composer.compose_chain(full)
        assert again.replayed_hops == 0
        assert again.reused_hops == len(full) - 1

    def test_retry_residuals_mode_is_part_of_the_token(self, grown_chain):
        composer = IncrementalComposer()
        retrying = composer.compose_chain(tuple(grown_chain))
        frozen = compose_chain(
            tuple(grown_chain),
            retry_residuals=False,
            checkpoints=composer.checkpoints,
        )
        # The frozen-residual fold never resumes from a retrying checkpoint.
        assert frozen.reused_hops == 0
        assert _fingerprint(frozen) == _fingerprint(
            compose_chain(tuple(grown_chain), retry_residuals=False)
        )
        assert _fingerprint(retrying) == _fingerprint(compose_chain(tuple(grown_chain)))


class TestCheckpointInvalidation:
    def test_config_change_invalidates(self, grown_chain):
        store = CheckpointStore()
        chain = tuple(grown_chain[:5])
        compose_chain(chain, ComposerConfig.default(), checkpoints=store)
        crippled = compose_chain(
            chain, ComposerConfig.no_right_compose(), checkpoints=store
        )
        assert crippled.reused_hops == 0
        assert _fingerprint(crippled) == _fingerprint(
            compose_chain(chain, ComposerConfig.no_right_compose())
        )

    def test_registry_version_bump_invalidates(self, grown_chain):
        from repro.algebra.expressions import ConstantRelation

        store = CheckpointStore()
        chain = tuple(grown_chain[:5])
        config = ComposerConfig()
        warm = compose_chain(chain, config, checkpoints=store)
        assert compose_chain(chain, config, checkpoints=store).reused_hops == len(warm.hops)

        # Registering a rule bundle (even an empty one, for an operator the
        # workload never produces) bumps the registry version, which must
        # retire every recorded checkpoint.
        config.registry.register_operator(ConstantRelation)
        bumped = compose_chain(chain, config, checkpoints=store)
        assert bumped.reused_hops == 0
        assert _fingerprint(bumped) == _fingerprint(warm)

        # Unregistering bumps again: still no reuse of either generation.
        config.registry.unregister(ConstantRelation)
        assert compose_chain(chain, config, checkpoints=store).reused_hops == 0

    def test_symbol_order_is_part_of_the_fingerprint(self, grown_chain):
        chain = tuple(grown_chain[:3])
        default_tokens = chain_tokens(chain, ComposerConfig(), True)
        ordered = ComposerConfig().with_symbol_order(
            chain[0].output_signature.names()[:1]
        )
        assert chain_tokens(chain, ordered, True) != default_tokens

    def test_store_eviction_keeps_results_correct(self, grown_chain):
        composer = IncrementalComposer(checkpoint_max_entries=2)
        for length in range(2, len(grown_chain) + 1):
            prefix = tuple(grown_chain[:length])
            assert _fingerprint(composer.compose_chain(prefix)) == _fingerprint(
                compose_chain(prefix)
            )
        assert composer.checkpoints.evictions > 0


class TestBackendsAgree:
    def test_all_backends_byte_identical_with_checkpoints(self, grown_chain):
        # Chains sharing fingerprinted prefixes: prefix reuse actually fires
        # within the batch (serial/thread) and the results must still match
        # from-scratch composition everywhere, workers included.
        chains = [tuple(grown_chain[:k]) for k in (3, 5, 7, len(grown_chain))]
        scratch = [_fingerprint(compose_chain(chain)) for chain in chains]
        for backend in ("serial", "thread", "process"):
            composer = BatchComposer(BatchConfig(backend=backend, max_workers=2))
            report = composer.run_chains(chains)
            assert report.all_succeeded, report.summary()
            assert [_fingerprint(item.result) for item in report.items] == scratch
            # The parent only reports store counters it can actually observe:
            # process workers keep private stores.
            if backend == "process":
                assert report.checkpoint_stats is None
            else:
                assert report.checkpoint_stats is not None

    def test_serial_batch_reuses_across_runs(self, grown_chain):
        composer = BatchComposer(BatchConfig(backend="serial"))
        chains = [tuple(grown_chain[:k]) for k in (4, 6)]
        composer.run_chains(chains)
        report = composer.run_chains([tuple(grown_chain)])
        (item,) = report.items
        # The 6-mapping prefix was checkpointed by the first batch.
        assert item.result.reused_hops >= 5
        assert _fingerprint(item.result) == _fingerprint(
            compose_chain(tuple(grown_chain))
        )

    def test_process_workers_are_preseeded(self, grown_chain):
        composer = BatchComposer(BatchConfig(backend="process", max_workers=1))
        prefix = tuple(grown_chain[:6])
        composer.run_chains([prefix])
        # Worker checkpoints stay in the worker, so the parent store is still
        # empty; cross-batch reuse on the process backend goes through
        # explicit seeding (the documented contract).  Seed from a serial
        # composer's store and verify the shipped snapshot is honoured.
        assert len(composer.checkpoints) == 0
        serial = BatchComposer(BatchConfig(backend="serial"))
        serial.run_chains([prefix])
        composer.checkpoints.seed(serial.checkpoints.snapshot())
        report = composer.run_chains([tuple(grown_chain)])
        (item,) = report.items
        assert item.result.reused_hops >= len(prefix) - 1
        assert _fingerprint(item.result) == _fingerprint(
            compose_chain(tuple(grown_chain))
        )


class TestEvolutionSession:
    def test_session_tracks_replays_and_matches_scratch(self, grown_chain):
        session = EvolutionSession(grown_chain[:2])
        for mapping in grown_chain[2:]:
            session.append(mapping)
        assert session.total_replayed_hops() == len(grown_chain) - 1
        assert _fingerprint(session.result) == _fingerprint(
            compose_chain(session.mappings)
        )

        rng = random.Random(1)
        edited = _variant(session.mappings[4], rng)
        result = session.edit(4, edited)
        assert result.reused_hops == 3
        assert _fingerprint(result) == _fingerprint(compose_chain(session.mappings))

        result = session.replace_suffix(4, grown_chain[4:])
        assert _fingerprint(result) == _fingerprint(compose_chain(session.mappings))

        result = session.pop()
        assert result.replayed_hops == 0  # the shorter prefix is checkpointed
        assert _fingerprint(result) == _fingerprint(compose_chain(session.mappings))

    def test_session_rejects_composer_with_overriding_settings(self, grown_chain):
        composer = IncrementalComposer()
        with pytest.raises(EngineError):
            EvolutionSession(composer=composer, config=ComposerConfig())
        with pytest.raises(EngineError):
            # A supplied composer carries its own residual-threading mode; a
            # conflicting explicit request must not be silently dropped.
            EvolutionSession(composer=composer, retry_residuals=False)
        assert EvolutionSession(composer=composer).composer is composer

    def test_session_rejects_non_splicing_deltas(self, grown_chain):
        session = EvolutionSession(grown_chain[:4])
        before = session.mappings
        with pytest.raises(EngineError):
            session.edit(1, grown_chain[5])  # signatures do not splice
        assert session.mappings == before
        with pytest.raises(EngineError):
            session.append(grown_chain[5])
        assert session.mappings == before

    def test_empty_session_guards(self, grown_chain):
        session = EvolutionSession()
        with pytest.raises(EngineError):
            session.result
        session.append(grown_chain[0])
        assert session.result.chain_length == 1
        assert session.result.hops == ()

    def test_mapping_fingerprint_is_content_based(self, grown_chain):
        mapping = grown_chain[0]
        clone = Mapping(
            mapping.input_signature,
            mapping.output_signature,
            ConstraintSet(list(mapping.constraints)),
        )
        assert clone is not mapping
        assert clone.fingerprint() == mapping.fingerprint()
        rotated = _variant(mapping, random.Random(0))
        assert rotated.fingerprint() != mapping.fingerprint()
