"""Tests for the batch composition engine (:mod:`repro.engine.batch`)."""

import time

import pytest

from repro.engine.batch import (
    BatchComposer,
    BatchConfig,
    ProblemStatus,
)
from repro.engine.workloads import WorkloadConfig, generate_workload, pairwise_problems
from repro.exceptions import EngineError


class TestBatchConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(EngineError, match="backend"):
            BatchConfig(backend="gpu")

    def test_invalid_workers_rejected(self):
        with pytest.raises(EngineError):
            BatchConfig(max_workers=0)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(EngineError):
            BatchConfig(timeout_seconds=0)

    def test_auto_backend_resolves_to_serial(self):
        # Composition is GIL-bound pure Python: auto must not pick a pool.
        assert BatchConfig(backend="auto").resolved_backend() == "serial"
        assert BatchConfig(backend="process").resolved_backend() == "process"

    def test_fail_fast_on_pool_backend_preserves_exception_type(self):
        def bad(x):
            if x == 0:
                raise KeyError("original type survives")
            return x

        composer = BatchComposer(
            BatchConfig(backend="thread", max_workers=2, fail_fast=True)
        )
        with pytest.raises(KeyError):
            composer.map(bad, list(range(20)))

    def test_failure_error_includes_traceback(self):
        def bad(_):
            raise ValueError("with traceback")

        report = BatchComposer(BatchConfig(backend="serial")).map(bad, [1])
        assert "Traceback" in report.failed[0].error
        assert "with traceback" in report.failed[0].error


class TestMap:
    def test_results_in_submission_order(self):
        composer = BatchComposer(BatchConfig(backend="thread", max_workers=4))
        report = composer.map(lambda x: x * 10, list(range(8)))
        assert [item.result for item in report.items] == [x * 10 for x in range(8)]
        assert report.all_succeeded

    def test_failure_isolation(self):
        def flaky(x):
            if x == 2:
                raise ValueError("boom on 2")
            return x

        composer = BatchComposer(BatchConfig(backend="serial"))
        report = composer.map(flaky, [0, 1, 2, 3])
        assert len(report.succeeded) == 3
        assert len(report.failed) == 1
        failed = report.failed[0]
        assert failed.index == 2
        assert failed.status is ProblemStatus.FAILED
        assert "boom on 2" in failed.error
        with pytest.raises(EngineError, match="1/4"):
            report.raise_failures()

    def test_fail_fast_reraises(self):
        def bad(_):
            raise RuntimeError("stop everything")

        composer = BatchComposer(BatchConfig(backend="serial", fail_fast=True))
        with pytest.raises(RuntimeError, match="stop everything"):
            composer.map(bad, [1])

    def test_soft_timeout_classification(self):
        def slow(x):
            if x == 1:
                time.sleep(0.05)
            return x

        composer = BatchComposer(
            BatchConfig(backend="thread", max_workers=2, timeout_seconds=0.02)
        )
        report = composer.map(slow, [0, 1, 2])
        assert len(report.timed_out) == 1
        assert report.timed_out[0].index == 1
        assert report.timed_out[0].result is None
        assert {item.index for item in report.succeeded} == {0, 2}

    def test_label_mismatch_rejected(self):
        composer = BatchComposer()
        with pytest.raises(EngineError, match="labels"):
            composer.map(lambda x: x, [1, 2], labels=["only-one"])


class TestRunChains:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_workload(
            WorkloadConfig(num_problems=8, min_chain_length=4, max_chain_length=5, seed=5)
        )

    def test_payloads_are_chain_results(self, workload):
        report = BatchComposer(BatchConfig(backend="serial")).run_chains(workload)
        assert report.all_succeeded
        assert report.items[0].label == workload[0].name
        for item, problem in zip(report.items, workload):
            assert item.result.chain_length == problem.chain_length

    def test_backends_agree(self, workload):
        serial = BatchComposer(BatchConfig(backend="serial")).run_chains(workload)
        threaded = BatchComposer(
            BatchConfig(backend="thread", max_workers=4)
        ).run_chains(workload)
        for a, b in zip(serial.items, threaded.items):
            assert a.result.constraints == b.result.constraints
            assert a.result.residual_symbols == b.result.residual_symbols

    def test_cache_stats_reported_when_sharing(self, workload):
        report = BatchComposer(BatchConfig(backend="serial")).run_chains(workload)
        assert report.cache_stats is not None
        assert report.cache_stats["hits"] > 0
        off = BatchComposer(
            BatchConfig(backend="serial", share_expression_cache=False)
        ).run_chains(workload)
        assert off.cache_stats is None
        for a, b in zip(report.items, off.items):
            assert a.result.constraints == b.result.constraints

    def test_report_statistics(self, workload):
        report = BatchComposer(BatchConfig(backend="serial")).run_chains(workload)
        assert len(report) == len(workload)
        assert report.throughput() > 0
        assert report.total_problem_seconds() > 0
        assert 0.0 <= report.mean_fraction_eliminated() <= 1.0
        assert f"{len(workload)}/{len(workload)} problems succeeded" in report.summary()


class TestRun:
    def test_pairwise_problems_compose(self):
        workload = generate_workload(
            WorkloadConfig(num_problems=3, min_chain_length=4, max_chain_length=4, seed=9)
        )
        problems = [p for chain in workload for p in pairwise_problems(chain)]
        report = BatchComposer(BatchConfig(backend="serial")).run(problems)
        assert report.all_succeeded
        assert report.items[0].label == problems[0].name


def test_acceptance_workload_fifty_problems_zero_crashes():
    """The ISSUE acceptance criterion: >= 50 seeded problems, chain length >= 4,
    through the BatchComposer with zero crashes."""
    workload = generate_workload(
        WorkloadConfig(num_problems=50, min_chain_length=4, max_chain_length=6, seed=2006)
    )
    assert len(workload) >= 50
    assert all(problem.chain_length >= 4 for problem in workload)
    report = BatchComposer().run_chains(workload)
    assert len(report) == 50
    assert report.all_succeeded, report.summary()
