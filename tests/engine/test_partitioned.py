"""Partition-correctness tests for the cost-guided planner at engine scale.

Randomized multi-component workloads (restricted to the forward-propagatable
primitives so satisfying instances can be constructed) must compose to
semantically equivalent outputs under the fixed order and the cost-guided
partitioned planner, and the planner's output must be byte-identical across
the serial/thread/process backends of ``BatchComposer.run_partitioned``.
"""

from __future__ import annotations

import pytest

from repro.algebra.evaluation import SkolemInterpretation
from repro.compose import ComposerConfig, compose
from repro.constraints.satisfaction import satisfies_all
from repro.engine import (
    BatchComposer,
    BatchConfig,
    CheckpointStore,
    ChainGrower,
    WorkloadConfig,
    compose_chain,
    generate_partitioned_problem,
    generate_partitioned_workload,
    partitioned_forward_instance,
)
from repro.engine.workloads import forward_event_vector

#: Interpretation used if an output constraint still mentions a Skolem term.
DEFAULT_SKOLEMS = SkolemInterpretation(
    default=lambda name, arguments: (name,) + tuple(arguments)
)


def _workload(seed, num_problems=4, num_components=3):
    return generate_partitioned_workload(
        WorkloadConfig(
            num_problems=num_problems,
            schema_size=3,
            max_arity=4,
            keys_fraction=0.0,
            event_vector=forward_event_vector(),
            num_components=num_components,
            seed=seed,
        )
    )


def _holds(constraints, instance) -> bool:
    return satisfies_all(instance, constraints, skolems=DEFAULT_SKOLEMS)


@pytest.mark.parametrize("master_seed", [2006, 41])
def test_planned_output_semantically_equivalent_to_fixed(master_seed):
    checked = 0
    for partitioned in _workload(master_seed):
        original = partitioned.problem.all_constraints
        fixed = compose(partitioned.problem, ComposerConfig())
        planned = compose(partitioned.problem, ComposerConfig.cost_guided())
        assert planned.components >= partitioned.num_components
        for instance_seed in range(2):
            instance = partitioned_forward_instance(
                partitioned, seed=partitioned.seed + instance_seed
            )
            assert _holds(original, instance), f"{partitioned.name}: bad construction"
            # Soundness: a satisfying instance may not violate either output.
            assert _holds(fixed.constraints, instance), f"{partitioned.name}: fixed"
            assert _holds(planned.constraints, instance), f"{partitioned.name}: planned"
            checked += 1
    assert checked >= 8


def test_run_partitioned_is_byte_identical_across_backends():
    workload = _workload(97, num_problems=2)
    reference = None
    for backend in ("serial", "thread", "process"):
        composer = BatchComposer(
            BatchConfig(
                backend=backend,
                max_workers=2,
                composer_config=ComposerConfig.cost_guided(),
            )
        )
        report = composer.run_partitioned(workload)
        assert report.all_succeeded, report.summary()
        outputs = [
            (item.result.constraints.to_text(), item.result.remaining_symbols)
            for item in report.items
        ]
        if reference is None:
            reference = outputs
        else:
            assert outputs == reference, f"{backend} diverged from serial"


def test_run_partitioned_matches_direct_planned_compose():
    workload = _workload(13, num_problems=2)
    composer = BatchComposer(
        BatchConfig(backend="serial", composer_config=ComposerConfig.cost_guided())
    )
    report = composer.run_partitioned(workload)
    assert report.all_succeeded
    for partitioned, item in zip(workload, report.items):
        direct = compose(partitioned.problem, ComposerConfig.cost_guided())
        assert item.result.constraints.to_text() == direct.constraints.to_text()
        assert item.result.plan == direct.plan


def test_run_partitioned_switches_fixed_configs_to_cost_mode():
    workload = _workload(5, num_problems=1)
    composer = BatchComposer(BatchConfig(backend="serial"))  # fixed-order config
    report = composer.run_partitioned(workload)
    assert report.all_succeeded
    assert report.items[0].result.components >= 1


def test_run_partitioned_drops_explicit_symbol_order():
    """An explicit symbol_order cannot combine with the planner; the switch to
    cost mode must drop it rather than crash on the config validation."""
    workload = _workload(5, num_problems=1)
    order = workload[0].problem.sigma2.names()
    composer = BatchComposer(
        BatchConfig(backend="serial", composer_config=ComposerConfig(symbol_order=order))
    )
    report = composer.run_partitioned(workload)
    assert report.all_succeeded, report.summary()
    assert report.items[0].result.components >= 1


def test_single_component_and_singleton_edge_cases():
    single = generate_partitioned_problem(
        seed=8, num_components=1, event_vector=forward_event_vector()
    )
    fixed = compose(single.problem, ComposerConfig())
    planned = compose(single.problem, ComposerConfig.cost_guided())
    instance = partitioned_forward_instance(single, seed=3)
    assert _holds(single.problem.all_constraints, instance)
    assert _holds(fixed.constraints, instance)
    assert _holds(planned.constraints, instance)
    # Every σ2 symbol is accounted for exactly once: either planned inside a
    # component or dropped for free — never both, never twice.
    planned_symbols = [symbol for component in planned.plan for symbol in component]
    assert len(planned_symbols) == len(set(planned_symbols))
    assert set(planned_symbols) <= set(planned.attempted_symbols)
    assert set(planned.attempted_symbols) == set(single.problem.sigma2.names())


def test_cost_mode_invalidates_fixed_mode_checkpoints():
    """The config fingerprint covers elimination_order, so a planner run never
    resumes from a fixed-order chain checkpoint (and vice versa)."""
    chain = tuple(ChainGrower(seed=3, schema_size=4).grow_many(4))
    store = CheckpointStore()
    compose_chain(chain, ComposerConfig(), checkpoints=store)
    replay_fixed = compose_chain(chain, ComposerConfig(), checkpoints=store)
    assert replay_fixed.reused_hops == len(chain) - 1

    cold_cost = compose_chain(chain, ComposerConfig.cost_guided(), checkpoints=store)
    assert cold_cost.reused_hops == 0
    warm_cost = compose_chain(chain, ComposerConfig.cost_guided(), checkpoints=store)
    assert warm_cost.reused_hops == len(chain) - 1
    assert warm_cost.constraints.to_text() == cold_cost.constraints.to_text()
