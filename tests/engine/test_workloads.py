"""Tests for the randomized workload generator (:mod:`repro.engine.workloads`)."""

import pytest

from repro.engine.chain import validate_chain
from repro.engine.workloads import (
    WorkloadConfig,
    forward_event_vector,
    forward_instance,
    generate_chain_problem,
    generate_workload,
    pairwise_problems,
)
from repro.evolution.event_vector import EventVector
from repro.exceptions import EngineError


class TestWorkloadConfig:
    def test_rejects_bad_counts(self):
        with pytest.raises(EngineError):
            WorkloadConfig(num_problems=0)

    def test_rejects_bad_chain_range(self):
        with pytest.raises(EngineError):
            WorkloadConfig(min_chain_length=1)
        with pytest.raises(EngineError):
            WorkloadConfig(min_chain_length=5, max_chain_length=4)

    def test_rejects_bad_arity_range(self):
        with pytest.raises(EngineError):
            WorkloadConfig(min_arity=3, max_arity=2)

    def test_rejects_bad_keys_fraction(self):
        with pytest.raises(EngineError):
            WorkloadConfig(keys_fraction=1.5)


class TestDeterminism:
    def test_same_seed_same_workload(self):
        config = WorkloadConfig(num_problems=6, seed=77)
        first = generate_workload(config)
        second = generate_workload(config)
        assert [p.name for p in first] == [p.name for p in second]
        assert [p.primitives for p in first] == [p.primitives for p in second]
        for a, b in zip(first, second):
            for ma, mb in zip(a.mappings, b.mappings):
                assert ma.constraints == mb.constraints
                assert ma.input_signature == mb.input_signature
                assert ma.output_signature == mb.output_signature

    def test_different_seeds_differ(self):
        a = generate_workload(WorkloadConfig(num_problems=6, seed=1))
        b = generate_workload(WorkloadConfig(num_problems=6, seed=2))
        assert [p.primitives for p in a] != [p.primitives for p in b]


class TestStructure:
    def test_chains_are_valid_and_in_range(self):
        config = WorkloadConfig(num_problems=10, min_chain_length=4, max_chain_length=7, seed=3)
        for problem in generate_workload(config):
            assert 4 <= problem.chain_length <= 7
            validate_chain(problem.mappings)  # raises on any structural defect
            for first, second in zip(problem.mappings, problem.mappings[1:]):
                assert first.output_signature == second.input_signature

    def test_every_hop_consumes_its_whole_input(self):
        problem = generate_chain_problem(seed=4, chain_length=3, schema_size=3)
        for mapping in problem.mappings:
            assert mapping.input_signature.is_disjoint_from(mapping.output_signature)

    def test_chain_problem_metadata(self):
        problem = generate_chain_problem(seed=4, chain_length=3, schema_size=3)
        assert problem.chain_length == 3
        assert len(problem.primitives) == 3
        assert problem.constraint_count() > 0
        assert "chain(seed=4" in problem.name

    def test_short_chain_rejected(self):
        with pytest.raises(EngineError):
            generate_chain_problem(seed=0, chain_length=1)

    def test_pairwise_problems_are_well_formed(self):
        problem = generate_chain_problem(seed=8, chain_length=4, schema_size=3)
        pairs = pairwise_problems(problem)
        assert len(pairs) == 3
        for index, pair in enumerate(pairs):
            assert pair.sigma1 == problem.mappings[index].input_signature
            assert pair.sigma3 == problem.mappings[index + 1].output_signature


class TestForwardInstances:
    def test_forward_instance_covers_all_signatures(self):
        config = WorkloadConfig(
            num_problems=1,
            schema_size=3,
            keys_fraction=0.0,
            event_vector=forward_event_vector(),
            seed=21,
        )
        problem = generate_workload(config)[0]
        instance = forward_instance(problem, seed=1)
        names = set(instance.relation_names())
        for mapping in problem.mappings:
            assert set(mapping.input_signature.names()) <= names
            assert set(mapping.output_signature.names()) <= names

    def test_forward_instance_is_deterministic(self):
        problem = generate_chain_problem(
            seed=5, chain_length=3, schema_size=3, event_vector=forward_event_vector()
        )
        assert forward_instance(problem, seed=2) == forward_instance(problem, seed=2)

    def test_backward_chain_raises(self):
        problem = generate_chain_problem(
            seed=5,
            chain_length=2,
            schema_size=3,
            event_vector=EventVector.uniform(("Db",)),
        )
        with pytest.raises(EngineError, match="forward-propagatable"):
            forward_instance(problem)
