"""Randomized semantic-equivalence tests for chained composition.

For seeded random chain workloads (restricted to the forward-propagatable
primitives so satisfying instances can be *constructed*), the chained
composition of the engine and a manual hop-by-hop fold over ``compose``
must agree on every generated instance: an instance satisfying all of the
chain's original constraints must satisfy both outputs, evaluated with the
:class:`Evaluator` (a default :class:`SkolemInterpretation` is supplied in
case any Skolem function survives deskolemization).
"""

from __future__ import annotations

import pytest

from repro.algebra.evaluation import SkolemInterpretation
from repro.compose.composer import compose_mappings
from repro.constraints.satisfaction import satisfies_all
from repro.engine.chain import compose_chain
from repro.engine.workloads import (
    WorkloadConfig,
    forward_event_vector,
    forward_instance,
    generate_workload,
)

#: Interpretation used if an output constraint still mentions a Skolem term.
DEFAULT_SKOLEMS = SkolemInterpretation(
    default=lambda name, arguments: (name,) + tuple(arguments)
)


def _workload(seed, num_problems=6):
    return generate_workload(
        WorkloadConfig(
            num_problems=num_problems,
            min_chain_length=4,
            max_chain_length=5,
            schema_size=3,
            max_arity=4,
            keys_fraction=0.0,
            event_vector=forward_event_vector(),
            seed=seed,
        )
    )


def _hop_by_hop(mappings, config=None):
    """Fold the chain manually through pair-wise ``compose`` calls.

    Residual symbols are frozen into the input signature at every hop (the
    ``to_mapping_with_residue`` strategy), which is a *different* threading
    policy than the engine's retrying fold — semantically both must remain
    sound rewritings of the same original constraints.
    """
    current = mappings[0]
    for next_mapping in mappings[1:]:
        result = compose_mappings(current, next_mapping, config)
        current = result.to_mapping_with_residue()
    return current


def _holds(constraints, instance) -> bool:
    """Evaluate every constraint with the library's satisfaction checker,
    Skolem-ready (shared with ``test_partitioned.py``)."""
    return satisfies_all(instance, constraints, skolems=DEFAULT_SKOLEMS)


@pytest.mark.parametrize("master_seed", [2006, 41, 97])
def test_chained_agrees_with_hop_by_hop_on_satisfying_instances(master_seed):
    checked = 0
    for problem in _workload(master_seed):
        original = [c for m in problem.mappings for c in m.constraints]
        chained = compose_chain(problem.mappings)
        hopwise = _hop_by_hop(problem.mappings)
        for instance_seed in range(3):
            instance = forward_instance(problem, seed=problem.seed + instance_seed)
            # The construction must actually satisfy the original chain.
            assert _holds(original, instance), f"{problem.name}: bad construction"
            chained_ok = _holds(chained.constraints, instance)
            hopwise_ok = _holds(hopwise.constraints, instance)
            # Soundness: a satisfying instance may not violate either output.
            assert chained_ok, f"{problem.name}: chained output violated"
            assert hopwise_ok, f"{problem.name}: hop-by-hop output violated"
            assert chained_ok == hopwise_ok
            checked += 1
    assert checked >= 18


def test_residual_threading_policies_agree_semantically():
    """Retrying residuals vs. freezing them must both stay sound."""
    for problem in _workload(7, num_problems=4):
        original = [c for m in problem.mappings for c in m.constraints]
        retried = compose_chain(problem.mappings, retry_residuals=True)
        frozen = compose_chain(problem.mappings, retry_residuals=False)
        for instance_seed in range(2):
            instance = forward_instance(problem, seed=instance_seed)
            assert _holds(original, instance)
            assert _holds(retried.constraints, instance)
            assert _holds(frozen.constraints, instance)


def test_chained_output_mentions_only_surviving_symbols():
    for problem in _workload(13, num_problems=4):
        chained = compose_chain(problem.mappings)
        surviving = (
            set(chained.sigma_first.names())
            | set(chained.sigma_last.names())
            | set(chained.residual_symbols)
        )
        assert chained.constraints.relation_names() <= surviving
