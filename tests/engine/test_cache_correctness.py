"""Cache correctness: the expression cache must never change any output.

The interning/token cache is a pure accelerator.  These tests run the same
generated workloads with the cache disabled, with the cache enabled, and
across the batch backends, and require byte-identical results everywhere:
same constraints (to the printed text), same residual symbols, same
per-symbol outcomes.
"""

import pytest

from repro.algebra import interning
from repro.algebra.simplify import simplify_constraint_set, simplify_expression
from repro.algebra.traversal import substitute_relation
from repro.compose.composer import compose
from repro.engine import (
    BatchComposer,
    BatchConfig,
    WorkloadConfig,
    compose_chain,
    generate_workload,
    pairwise_problems,
)


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(
        num_problems=8,
        min_chain_length=4,
        max_chain_length=7,
        schema_size=4,
        seed=1742,
    )
    return generate_workload(config)


def _chain_fingerprint(result):
    return (
        result.constraints.to_text(),
        tuple(result.residual_symbols),
        tuple(
            (hop.attempted_symbols, hop.eliminated_symbols, hop.residual_symbols)
            for hop in result.hops
        ),
    )


def _composition_fingerprint(result):
    return (
        result.constraints.to_text(),
        tuple(sorted(result.residual_sigma2.names())),
        tuple((o.symbol, o.success, o.method) for o in result.outcomes),
        result.output_operator_count,
    )


class TestCacheDoesNotChangeResults:
    def test_chains_identical_with_and_without_cache(self, workload):
        assert interning.active_cache() is None
        plain = [_chain_fingerprint(compose_chain(p.mappings)) for p in workload]
        with interning.shared_expression_cache():
            cached = [_chain_fingerprint(compose_chain(p.mappings)) for p in workload]
        # And once more through the same (already warm) cache object.
        cache = interning.ExpressionCache()
        with interning.shared_expression_cache(cache):
            warm1 = [_chain_fingerprint(compose_chain(p.mappings)) for p in workload]
            warm2 = [_chain_fingerprint(compose_chain(p.mappings)) for p in workload]
        assert plain == cached == warm1 == warm2

    def test_pairwise_compositions_identical(self, workload):
        problems = [p for chain in workload[:4] for p in pairwise_problems(chain)]
        plain = [_composition_fingerprint(compose(p)) for p in problems]
        with interning.shared_expression_cache():
            cached = [_composition_fingerprint(compose(p)) for p in problems]
        assert plain == cached

    def test_backends_agree(self, workload):
        reports = {}
        for backend in ("serial", "thread", "process"):
            composer = BatchComposer(BatchConfig(backend=backend, max_workers=2))
            report = composer.run_chains(workload)
            assert report.all_succeeded, report.summary()
            reports[backend] = [
                _chain_fingerprint(item.result) for item in report.items
            ]
        assert reports["serial"] == reports["thread"] == reports["process"]

    def test_cache_disabled_batch_agrees(self, workload):
        cached = BatchComposer(BatchConfig(backend="serial"))
        uncached = BatchComposer(
            BatchConfig(backend="serial", share_expression_cache=False)
        )
        a = [_chain_fingerprint(i.result) for i in cached.run_chains(workload).items]
        b = [_chain_fingerprint(i.result) for i in uncached.run_chains(workload).items]
        assert a == b


class TestPrimitiveOperationsAgree:
    """Simplification and substitution results match with the cache on/off."""

    def test_simplify_agrees_on_workload_expressions(self, workload):
        expressions = [
            side
            for problem in workload
            for mapping in problem.mappings
            for constraint in mapping.constraints
            for side in constraint.sides()
        ]
        plain = [simplify_expression(e) for e in expressions]
        with interning.shared_expression_cache():
            cached = [simplify_expression(e) for e in expressions]
            again = [simplify_expression(e) for e in expressions]
        assert plain == cached == again

    def test_simplify_constraint_sets_agree(self, workload):
        sets = [m.constraints for p in workload for m in p.mappings]
        plain = [simplify_constraint_set(s).to_text() for s in sets]
        with interning.shared_expression_cache():
            cached = [simplify_constraint_set(s).to_text() for s in sets]
        assert plain == cached

    def test_substitution_agrees(self, workload):
        from repro.algebra.expressions import Relation

        jobs = []
        for problem in workload[:4]:
            for mapping in problem.mappings:
                for constraint in mapping.constraints:
                    for name in sorted(constraint.relation_names()):
                        arity = None
                        for other in mapping.constraints:
                            for side in other.sides():
                                if isinstance(side, Relation) and side.name == name:
                                    arity = side.arity
                        if arity is not None:
                            jobs.append((constraint.left, name, Relation("Z_", arity)))
        assert jobs
        plain = [substitute_relation(e, n, r) for e, n, r in jobs]
        with interning.shared_expression_cache():
            cached = [substitute_relation(e, n, r) for e, n, r in jobs]
        assert plain == cached
