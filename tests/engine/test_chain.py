"""Tests for n-ary chained composition (:mod:`repro.engine.chain`)."""

import pytest

from repro.constraints.constraint_set import ConstraintSet
from repro.engine.chain import ChainResult, compose_chain, validate_chain
from repro.exceptions import EngineError
from repro.mapping.mapping import Mapping, identity_mapping
from repro.schema.signature import RelationSchema, Signature


def _identity_chain(length=3, arity=2):
    """A chain of identity (rename) mappings R -> R_v2 -> R_v3 -> ..."""
    signature = Signature([RelationSchema("R", arity), RelationSchema("S", arity)])
    mappings = []
    current = signature
    for hop in range(length):
        mapping = identity_mapping(current, suffix=f"_v{hop + 2}")
        mappings.append(mapping)
        current = mapping.output_signature
    return mappings


class TestValidation:
    def test_empty_chain_rejected(self):
        with pytest.raises(EngineError):
            compose_chain([])

    def test_non_adjacent_signatures_rejected(self):
        first = identity_mapping(Signature([RelationSchema("R", 2)]))
        other = identity_mapping(Signature([RelationSchema("X", 2)]), suffix="_y")
        with pytest.raises(EngineError, match="chain breaks"):
            validate_chain([first, other])

    def test_recurring_relation_name_rejected(self):
        a = Signature([RelationSchema("R", 2)])
        b = Signature([RelationSchema("S", 2)])
        c = Signature([RelationSchema("R", 2)])  # reuses "R" non-adjacently
        m1 = identity_mapping(a, renamed=b)
        m2 = identity_mapping(b, renamed=c)
        with pytest.raises(EngineError, match="non-adjacent"):
            validate_chain([m1, m2])


class TestComposeChain:
    def test_single_mapping_is_trivial(self):
        mapping = identity_mapping(Signature([RelationSchema("R", 2)]))
        result = compose_chain([mapping])
        assert isinstance(result, ChainResult)
        assert result.hops == ()
        assert result.chain_length == 1
        assert result.is_complete
        assert result.to_mapping().constraints == mapping.constraints

    def test_identity_chain_composes_completely(self):
        mappings = _identity_chain(length=4)
        result = compose_chain(mappings)
        assert result.is_complete
        assert result.fraction_eliminated == 1.0
        assert result.chain_length == 4
        assert len(result.hops) == 3
        # The composed mapping goes straight from the first to the last version.
        mapping = result.to_mapping()
        assert mapping.input_signature == mappings[0].input_signature
        assert mapping.output_signature == mappings[-1].output_signature
        # Every output constraint links an original symbol to a final one.
        for constraint in result.constraints:
            names = constraint.relation_names()
            assert names <= set(mapping.input_signature.names()) | set(
                mapping.output_signature.names()
            )

    def test_hops_record_eliminations_and_timing(self):
        result = compose_chain(_identity_chain(length=3))
        for index, hop in enumerate(result.hops):
            assert hop.index == index
            assert hop.is_complete
            assert hop.eliminated_symbols == hop.attempted_symbols
            assert hop.elapsed_seconds > 0
        assert result.elapsed_seconds >= sum(h.elapsed_seconds for h in result.hops)

    def test_partial_chain_keeps_residuals(self):
        # Z appears on both sides of a symmetry constraint, which defeats view
        # unfolding, left compose and right compose alike (paper step 0).
        from repro.algebra.expressions import Projection
        from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint

        sigma1 = Signature([RelationSchema("R", 2)])
        sigma2 = Signature([RelationSchema("R_v2", 2), RelationSchema("Z", 2)])
        sigma3 = Signature([RelationSchema("R_v3", 2)])
        m12 = Mapping.from_constraints(
            sigma1,
            sigma2,
            identity_mapping(sigma1, renamed=Signature([RelationSchema("R_v2", 2)])).constraints,
        )
        z = sigma2.relation("Z")
        m23 = Mapping(
            sigma2,
            sigma3,
            ConstraintSet(
                [
                    EqualityConstraint(z, Projection(z, (1, 0))),
                    ContainmentConstraint(z, sigma3.relation("R_v3")),
                ]
            ),
        )
        result = compose_chain([m12, m23])
        assert "Z" in result.residual_symbols
        assert not result.is_complete
        with pytest.raises(EngineError):
            result.to_mapping()
        residue_mapping = result.to_mapping_with_residue()
        assert "Z" in residue_mapping.input_signature

    def test_retry_residuals_false_freezes_residuals(self):
        mappings = _identity_chain(length=4)
        retried = compose_chain(mappings, retry_residuals=True)
        frozen = compose_chain(mappings, retry_residuals=False)
        # On an easy chain both strategies are complete and agree.
        assert retried.is_complete and frozen.is_complete
        assert retried.constraints == frozen.constraints

    def test_summary_mentions_chain_length(self):
        result = compose_chain(_identity_chain(length=3))
        assert "chain of 3 mappings" in result.summary()
