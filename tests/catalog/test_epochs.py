"""Fencing epochs: monotonic promotion markers that stop zombie ex-primaries.

Promotion mints a strictly increasing epoch persisted next to the journal;
local writes stamp it into every entry, a ``FENCED`` tombstone (or a higher
persisted epoch) turns further local writes into
:class:`~repro.exceptions.StaleEpochError`, and *mirroring* stays exempt so
a fenced root can be re-seeded as a follower of the new primary.  The GC
retention rule additionally never drops segments a replica has not
acknowledged when ``replica-acks.json`` is present (the ``ack_level=replica``
metadata the service persists).
"""

import json

import pytest

from repro.catalog import MappingCatalog
from repro.catalog.journal import CatalogJournal
from repro.engine import ChainGrower
from repro.exceptions import JournalError, StaleEpochError


def _mappings(count, seed=3, schema_size=4):
    return list(ChainGrower(seed=seed, schema_size=schema_size).grow_many(count))


class TestJournalEpochs:
    def test_epoch_starts_at_zero_and_is_monotonic(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=1)
        assert journal.read_epoch() == 0
        assert journal.bump_epoch() == 1
        assert journal.bump_epoch() == 2
        assert journal.read_epoch() == 2
        with pytest.raises(JournalError):
            journal.write_epoch(1)  # going backwards is corruption
        with pytest.raises(JournalError):
            journal.write_epoch(0)

    def test_epoch_is_shared_across_handles(self, tmp_path):
        a = CatalogJournal(tmp_path / "journal", num_shards=1)
        b = CatalogJournal(tmp_path / "journal", num_shards=1)
        a.bump_epoch()
        assert b.read_epoch() == 1
        assert b.bump_epoch() == 2
        assert a.read_epoch() == 2

    def test_fence_is_monotonic_and_readable(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=1)
        assert journal.fenced_epoch() is None
        assert journal.fence(3) == 3
        assert journal.fenced_epoch() == 3
        # A lower fence does not regress the tombstone.
        assert journal.fence(2) == 3
        assert journal.fenced_epoch() == 3
        assert journal.fence(5) == 5


class TestCatalogFencing:
    def test_epoch_zero_entries_are_unstamped(self, tmp_path):
        """A never-promoted deployment journals byte-identically to before."""
        catalog = MappingCatalog(tmp_path / "cat")
        (mapping,) = _mappings(1)
        catalog.put_mapping("m", mapping)
        shard = catalog._shard_id("mapping", "m")
        (entry,) = catalog.journal.read_since(shard)
        assert "epoch" not in entry

    def test_bumped_epoch_is_stamped_into_entries(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "cat")
        assert catalog.bump_epoch() == 1
        (mapping,) = _mappings(1)
        catalog.put_mapping("m", mapping)
        shard = catalog._shard_id("mapping", "m")
        (entry,) = catalog.journal.read_since(shard)
        assert entry["epoch"] == 1
        assert catalog.stats()["epoch"] == 1

    def test_fenced_root_rejects_local_writes(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "cat")
        first, second = _mappings(2)
        catalog.put_mapping("before", first)
        # A promoted replica fences this root past our epoch (0).
        catalog.journal.fence(1)
        with pytest.raises(StaleEpochError):
            catalog.put_mapping("after", second)
        # The refused write never landed: neither index nor journal grew.
        assert [e.name for e in catalog.entries("mapping")] == ["before"]

    def test_shared_root_zombie_is_rejected(self, tmp_path):
        """Two handles on one root: the promoted one outranks the stale one."""
        zombie = MappingCatalog(tmp_path / "cat")
        promoted = MappingCatalog(tmp_path / "cat")
        first, second, third = _mappings(3)
        zombie.put_mapping("a", first)  # zombie adopts epoch 0
        promoted.bump_epoch()
        promoted.put_mapping("b", second)
        with pytest.raises(StaleEpochError):
            zombie.put_mapping("c", third)  # persisted epoch outran its handle

    def test_mirroring_is_exempt_from_fencing(self, tmp_path):
        """A fenced root can still be re-seeded as a follower."""
        primary = MappingCatalog(tmp_path / "primary")
        primary.bump_epoch()
        (mapping,) = _mappings(1)
        primary.put_mapping("m", mapping)
        shard = primary._shard_id("mapping", "m")
        (entry,) = primary.journal.read_since(shard)

        follower = MappingCatalog(tmp_path / "follower")
        follower.journal.fence(1)  # fenced off after the old primary died
        assert follower.apply_journal_entry(entry) == "applied"
        assert follower.get_mapping("m").fingerprint() == mapping.fingerprint()

    def test_follower_adopts_higher_epoch_from_entries(self, tmp_path):
        primary = MappingCatalog(tmp_path / "primary")
        primary.bump_epoch()
        primary.bump_epoch()
        (mapping,) = _mappings(1)
        primary.put_mapping("m", mapping)
        shard = primary._shard_id("mapping", "m")
        (entry,) = primary.journal.read_since(shard)

        follower = MappingCatalog(tmp_path / "follower")
        follower.apply_journal_entry(entry)
        # The entry's epoch is authoritative: adopted in memory and persisted,
        # so promoting *this* root later mints a strictly higher epoch.
        assert follower.epoch == 2
        assert follower.journal.read_epoch() == 2
        assert follower.bump_epoch() == 3

    def test_put_returns_journal_seq(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "cat")
        first, second = _mappings(2)
        entry = catalog.put_mapping("m", first)
        assert entry.journal_seq == 1
        # A content-identical re-put dedupes: no new journal entry, no seq.
        again = catalog.put_mapping("m", first)
        assert again.journal_seq is None
        assert catalog.put_mapping("m", second).journal_seq == 2


class TestReplicaAckRetention:
    def _journal_with_segments(self, tmp_path, entries=6):
        journal = CatalogJournal(tmp_path / "journal", num_shards=1, max_segment_bytes=1)
        for n in range(entries):
            journal.append(0, {"n": n})
        assert len(journal.segments(0)) == entries
        return journal

    def _write_acks(self, journal, applied):
        (journal.directory / "replica-acks.json").write_text(
            json.dumps({"followers": {"f1": {"applied": {"0": applied}}}})
        )

    def test_unacked_segments_survive_gc(self, tmp_path):
        journal = self._journal_with_segments(tmp_path)
        self._write_acks(journal, applied=2)
        report = journal.gc(max_segments=1)
        # Segments holding seqs 3.. are not follower-acknowledged: protected.
        assert report["ack_protected"] > 0
        seqs = [e["seq"] for e in journal.read_since(0, since=0)]
        assert seqs == [3, 4, 5, 6]

    def test_fully_acked_segments_are_collectable(self, tmp_path):
        journal = self._journal_with_segments(tmp_path)
        self._write_acks(journal, applied=6)
        report = journal.gc(max_segments=2)
        assert report["removed"] == 4
        assert report["ack_protected"] == 0
        assert len(journal.segments(0)) == 2

    def test_min_over_followers_is_the_floor(self, tmp_path):
        journal = self._journal_with_segments(tmp_path)
        (journal.directory / "replica-acks.json").write_text(
            json.dumps(
                {
                    "followers": {
                        "fast": {"applied": {"0": 6}},
                        "slow": {"applied": {"0": 1}},
                    }
                }
            )
        )
        journal.gc(max_segments=1)
        # The slow follower still needs seq 2: everything from there stays.
        assert [e["seq"] for e in journal.read_since(0, since=0)] == [2, 3, 4, 5, 6]

    def test_malformed_acks_protect_everything(self, tmp_path):
        journal = self._journal_with_segments(tmp_path)
        (journal.directory / "replica-acks.json").write_text("{not json")
        report = journal.gc(max_segments=1)
        assert report["removed"] == 0
        assert report["ack_protected"] > 0

    def test_absent_acks_fall_back_to_tail_rule(self, tmp_path):
        journal = self._journal_with_segments(tmp_path)
        report = journal.gc(max_segments=2)
        assert report["removed"] == 4
        assert len(journal.segments(0)) == 2
