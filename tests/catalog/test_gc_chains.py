"""Regression tests for chain-history GC and its delta-base guard.

A ``chain-delta`` record stores only a suffix; materializing it needs the
base version it references via ``delta_base`` — possibly transitively, when
deltas stack on deltas.  GC must therefore never evict a version a retained
version still reaches through that reference chain, no matter how aggressive
the age and keep-count policies are.  These tests GC aggressively and then
reconstruct every surviving version to prove it.
"""

import json

import pytest

from repro.catalog import MappingCatalog
from repro.catalog.catalog import _delta_protected_versions
from repro.engine import ChainGrower
from repro.exceptions import CatalogError


def _age_everything(catalog: MappingCatalog, kind: str) -> None:
    """Backdate every stored version of ``kind`` so no age bound protects it."""
    index_dir = catalog.root / "index"
    for path in sorted(index_dir.glob("shard-*.json")):
        payload = json.loads(path.read_text())
        changed = False
        for versions in payload.get("entries", {}).get(kind, {}).values():
            for record in versions:
                record["created_at"] = "2000-01-01T00:00:00Z"
                changed = True
        if changed:
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture()
def catalog(tmp_path):
    return MappingCatalog(tmp_path / "catalog")


@pytest.fixture()
def mappings():
    return tuple(ChainGrower(seed=17, schema_size=4).grow_many(5))


@pytest.fixture()
def other_mappings():
    return tuple(ChainGrower(seed=23, schema_size=4).grow_many(5))


class TestDeltaGuard:
    def test_walk_rescues_direct_base(self):
        versions = [
            {"version": 1, "fingerprint": "a", "path": "p1"},
            {"version": 2, "fingerprint": "b", "path": "p2", "delta_base": 1},
        ]
        assert _delta_protected_versions(versions, {1}) == {1}

    def test_walk_continues_through_doomed_deltas(self):
        # v3 survives; v2 and v1 are doomed.  v3 -> v2 -> v1 must rescue both.
        versions = [
            {"version": 1, "fingerprint": "a", "path": "p1"},
            {"version": 2, "fingerprint": "b", "path": "p2", "delta_base": 1},
            {"version": 3, "fingerprint": "c", "path": "p3", "delta_base": 2},
        ]
        assert _delta_protected_versions(versions, {1, 2}) == {1, 2}

    def test_unreferenced_versions_are_not_protected(self):
        versions = [
            {"version": 1, "fingerprint": "a", "path": "p1"},
            {"version": 2, "fingerprint": "b", "path": "p2"},  # full, no base
            {"version": 3, "fingerprint": "c", "path": "p3", "delta_base": 2},
        ]
        assert _delta_protected_versions(versions, {1, 2}) == {2}


class TestChainGC:
    def _grow_history(self, catalog, mappings, other_mappings, name="history"):
        """A history with a branch break in the middle.

        Versions 1..4 grow one chain (deltas on each other); version 5 shares
        no prefix with version 4, so it is stored full; versions 6..8 grow the
        new branch as deltas again.  With ``keep=1`` the survivor's reference
        chain covers only the new branch — the old branch is evictable.
        """
        for length in range(2, len(mappings) + 1):
            catalog.put_chain(name, mappings[:length])
        for length in range(2, len(other_mappings) + 1):
            catalog.put_chain(name, other_mappings[:length])
        versions = catalog._versions("chain", name)
        assert any("delta_base" in record for record in versions), (
            "test premise: the history must contain delta records"
        )
        assert any(
            "delta_base" not in record for record in versions[1:]
        ), "test premise: the branch break must be stored as a full record"
        return versions

    def test_aggressive_gc_keeps_every_survivor_materializable(
        self, catalog, mappings, other_mappings
    ):
        """GC with keep=1 and everything aged out; survivors must still load."""
        self._grow_history(catalog, mappings, other_mappings)
        _age_everything(catalog, "chain")
        before = {
            entry.version: entry.fingerprint
            for entry in catalog.versions("chain", "history")
        }

        report = catalog.gc(chain_keep_versions=1, chain_max_age_seconds=0.0)

        survivors = catalog.versions("chain", "history")
        assert survivors, "the newest version must always survive"
        # Every surviving version still materializes to the exact content
        # it was stored with — no delta lost its base.
        for entry in survivors:
            chain = catalog.get_chain("history", entry.version)
            assert entry.fingerprint == before[entry.version]
            assert catalog.verify("chain", "history", entry.version)
            assert len(chain) >= 2
        # The newest survivor is the full original chain.
        assert catalog.get_chain("history") == other_mappings
        # And something was actually evicted — the guard protects bases,
        # it does not disable GC.
        assert report["chains"]["removed"] > 0

    def test_transitive_bases_survive(self, catalog, mappings, other_mappings):
        versions = self._grow_history(catalog, mappings, other_mappings)
        _age_everything(catalog, "chain")
        # Compute the set the guard must retain for the newest version.
        newest = versions[-1]
        needed = set()
        current = newest
        by_version = {record["version"]: record for record in versions}
        while current.get("delta_base") is not None:
            needed.add(current["delta_base"])
            current = by_version[current["delta_base"]]

        catalog.gc(chain_keep_versions=1, chain_max_age_seconds=0.0)

        remaining = {entry.version for entry in catalog.versions("chain", "history")}
        assert needed <= remaining
        assert newest["version"] in remaining

    def test_gc_evictions_are_journaled_and_mirror(
        self, catalog, mappings, other_mappings, tmp_path
    ):
        """A replica applying the journal prunes exactly what the primary did."""
        self._grow_history(catalog, mappings, other_mappings)
        replica = MappingCatalog(tmp_path / "replica")
        shards = range(catalog.journal.num_shards)
        for shard in shards:
            for entry in catalog.journal.read_since(shard):
                replica.apply_journal_entry(entry)

        _age_everything(catalog, "chain")
        catalog.gc(chain_keep_versions=1, chain_max_age_seconds=0.0)
        cursors = {shard: replica.journal.last_seq(shard) for shard in shards}
        for shard in shards:
            for entry in catalog.journal.read_since(shard, since=cursors[shard]):
                replica.apply_journal_entry(entry)

        ours = [e.version for e in replica.versions("chain", "history")]
        theirs = [e.version for e in catalog.versions("chain", "history")]
        assert ours == theirs
        assert replica.get_chain("history") == catalog.get_chain("history")

    def test_grace_window_blocks_eviction(self, catalog, mappings, other_mappings):
        self._grow_history(catalog, mappings, other_mappings)
        report = catalog.gc(
            chain_keep_versions=1, chain_max_age_seconds=0.0, grace_seconds=3600
        )
        # Everything was created moments ago: the grace floor retains it all.
        assert report["chains"]["removed"] == 0
        assert len(catalog.versions("chain", "history")) == len(mappings) + len(other_mappings) - 2

    def test_dry_run_removes_nothing(self, catalog, mappings, other_mappings):
        self._grow_history(catalog, mappings, other_mappings)
        _age_everything(catalog, "chain")
        count = len(catalog.versions("chain", "history"))
        report = catalog.gc(
            chain_keep_versions=1, chain_max_age_seconds=0.0, dry_run=True
        )
        assert report["chains"]["removed"] >= 0
        assert len(catalog.versions("chain", "history")) == count

    def test_keep_versions_validated(self, catalog):
        with pytest.raises(CatalogError):
            catalog.gc(chain_keep_versions=0)
