"""Tests for the extended textio record formats (schemas, mappings, chains, results)."""

import pytest

from repro.compose.composer import compose
from repro.compose.config import ComposerConfig
from repro.engine.workloads import ChainGrower
from repro.exceptions import ParseError
from repro.literature.problems import all_problems, problem_by_name
from repro.schema.signature import RelationSchema, Signature
from repro.textio.records import (
    chain_from_text,
    chain_to_text,
    detect_kind,
    mapping_from_text,
    mapping_to_text,
    parse_record,
    result_from_text,
    result_to_text,
    signature_from_text,
    signature_to_text,
)


@pytest.fixture(scope="module")
def chain():
    return tuple(ChainGrower(seed=42, schema_size=4).grow_many(4))


class TestSignatureRecords:
    def test_roundtrip_with_keys(self):
        signature = Signature(
            [
                RelationSchema("R", 3, (0, 2)),
                RelationSchema("S", 1),
                RelationSchema("T", 5, (1,)),
            ]
        )
        text = signature_to_text(signature, name="demo", description="three relations")
        assert signature_from_text(text) == signature
        record = parse_record(text)
        assert record.kind == "schema"
        assert record.name == "demo"
        assert record.description == "three relations"

    def test_insertion_order_preserved(self):
        signature = Signature([RelationSchema("Z", 2), RelationSchema("A", 2)])
        assert signature_from_text(signature_to_text(signature)).names() == ("Z", "A")

    def test_wrong_kind_rejected(self):
        with pytest.raises(ParseError):
            signature_from_text("# kind: mapping\n[relations]\nR/2\n")


class TestMappingRecords:
    def test_roundtrip(self, chain):
        for mapping in chain:
            assert mapping_from_text(mapping_to_text(mapping)) == mapping

    def test_missing_section_rejected(self):
        with pytest.raises(ParseError):
            mapping_from_text("# kind: mapping\n[input]\nR/2\n[output]\nS/2\n")

    def test_multiline_metadata_rejected(self, chain):
        # An embedded newline would dump text outside any section and make
        # the stored record unparseable; the serializer must refuse up front.
        with pytest.raises(ParseError):
            mapping_to_text(chain[0], name="m", description="line1\nline2")
        with pytest.raises(ParseError):
            mapping_to_text(chain[0], name="two\nlines")


class TestChainRecords:
    def test_roundtrip(self, chain):
        assert chain_from_text(chain_to_text(chain, name="history")) == chain

    def test_empty_chain_rejected(self):
        with pytest.raises(ParseError):
            chain_to_text([])

    def test_length_mismatch_rejected(self, chain):
        # The sections are authoritative; a record whose '# length:' header
        # understates them must fail loudly rather than silently truncate.
        text = chain_to_text(chain).replace(
            f"# length: {len(chain)}", "# length: 1"
        )
        with pytest.raises(ParseError):
            chain_from_text(text)

    def test_broken_chain_rejected(self, chain):
        with pytest.raises(ParseError):
            chain_to_text([chain[0], chain[2]])

    def test_empty_constraint_sections_survive(self, chain):
        # A section header with no lines must parse back as an empty set.
        from repro.constraints.constraint_set import ConstraintSet
        from repro.mapping.mapping import Mapping

        empty = Mapping(
            chain[0].input_signature, chain[0].output_signature, ConstraintSet()
        )
        parsed = chain_from_text(chain_to_text([empty]))
        assert parsed == (empty,)


class TestResultRecords:
    #: Problems whose constraints mention relations only through expressions
    #: the signature-free constraint parser cannot re-read (pre-existing
    #: printer/parser limitation, same as tests/textio/test_format.py).
    UNPARSEABLE = {"nash_transitive_closure", "partial_elimination_mixed"}

    @pytest.mark.parametrize("order", ["fixed", "cost"])
    def test_roundtrip_across_literature(self, order):
        config = ComposerConfig(elimination_order=order)
        for literature_problem in all_problems():
            if literature_problem.name in self.UNPARSEABLE:
                continue
            result = compose(literature_problem.problem, config)
            back = result_from_text(result_to_text(result, name=literature_problem.name))
            assert back == result, literature_problem.name

    def test_failure_reasons_survive(self):
        # outerjoin_right_blocked records why right compose was rejected.
        problem = problem_by_name("outerjoin_right_blocked").problem
        result = compose(problem)
        assert any(outcome.failure_reasons for outcome in result.outcomes)
        assert result_from_text(result_to_text(result)) == result

    def test_plan_and_phases_survive(self):
        problem = problem_by_name("glav_chain").problem
        result = compose(problem, ComposerConfig.cost_guided())
        back = result_from_text(result_to_text(result))
        assert back.plan == result.plan
        assert back.phase_seconds == result.phase_seconds
        assert back.components == result.components

    def test_malformed_outcome_rejected(self):
        text = (
            "# kind: result\n[sigma1]\nR/2\n[residual]\n[sigma3]\nS/2\n"
            "[constraints]\n[outcomes]\nR bogus view_unfolding 0.0\n"
        )
        with pytest.raises(ParseError):
            result_from_text(text)


class TestDetectKind:
    def test_declared_kinds(self, chain):
        assert detect_kind(mapping_to_text(chain[0])) == "mapping"
        assert detect_kind(chain_to_text(chain)) == "chain"
        assert detect_kind(signature_to_text(chain[0].input_signature)) == "schema"

    def test_kindless_problem_format(self):
        from repro.textio.format import problem_to_text

        text = problem_to_text(problem_by_name("example1_movies").problem)
        assert detect_kind(text) == "problem"

    def test_unrecognizable_rejected(self):
        with pytest.raises(ParseError):
            detect_kind("[stuff]\nR/2\n")
