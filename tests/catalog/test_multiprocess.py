"""Crash-consistency and multi-process concurrency tests for the catalog.

These tests exercise the tentpole guarantees with *real* separate processes
sharing one on-disk catalog root:

* killing a writer mid-``put`` (SIGKILL, no cleanup) never leaves a torn
  index — a fresh catalog always opens, and every version it lists is
  complete and parseable (old state or new state, never half-written);
* two processes appending versions concurrently never lose updates — the
  per-shard file locks serialize the read-modify-write cycles, so all
  2N puts land as 2N distinct versions.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.catalog import MappingCatalog

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_python(code: str, *args: str, wait: bool = True):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", code, *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if not wait:
        return proc
    out, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, f"worker failed:\n{out}\n{err}"
    return out


#: Appends distinct schema versions under one shared name, forever (the
#: parent SIGKILLs it) or for a fixed count.  Prints each committed version.
_WRITER = """
import sys
from repro.catalog import MappingCatalog
from repro.schema.signature import RelationSchema, Signature

root, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
catalog = MappingCatalog(root)
i = 0
while count < 0 or i < count:
    signature = Signature((RelationSchema(f"R_{tag}_{i}", 1 + i % 5),))
    entry = catalog.put_schema("shared", signature)
    print(entry.version, flush=True)
    i += 1
"""


class TestCrashConsistency:
    @pytest.mark.parametrize("round_", range(3))
    def test_kill_mid_put_never_corrupts_the_index(self, tmp_path, round_):
        root = tmp_path / "catalog"
        writer = _run_python(_WRITER, str(root), "w", "-1", wait=False)
        # Let it commit at least one version, then kill it at an arbitrary
        # point in a put cycle — no cleanup handlers run on SIGKILL.
        deadline = time.time() + 30
        committed = writer.stdout.readline()
        assert committed.strip(), "writer never committed a version"
        time.sleep(0.02 + 0.03 * round_)
        writer.kill()
        writer.communicate()
        assert time.time() < deadline

        # The index must load cleanly and every listed version must be a
        # complete, parseable record with contiguous version numbers.
        catalog = MappingCatalog(root)
        versions = catalog.versions("schema", "shared")
        assert [entry.version for entry in versions] == list(
            range(1, len(versions) + 1)
        )
        for entry in versions:
            assert (root / entry.path).exists()
            catalog.get_schema("shared", entry.version)  # parses

        # The lock dies with the writer (fd-held flock), so new writers
        # proceed immediately — a crashed process never wedges the catalog.
        _run_python(_WRITER, str(root), "after", "2")
        reopened = MappingCatalog(root)
        assert len(reopened.versions("schema", "shared")) == len(versions) + 2


class TestConcurrentWriters:
    def test_two_processes_lose_no_versions(self, tmp_path):
        root = tmp_path / "catalog"
        puts_each = 25
        first = _run_python(_WRITER, str(root), "a", str(puts_each), wait=False)
        second = _run_python(_WRITER, str(root), "b", str(puts_each), wait=False)
        for proc in (first, second):
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, f"writer failed:\n{out}\n{err}"

        catalog = MappingCatalog(root)
        versions = catalog.versions("schema", "shared")
        # Every put landed: 2N versions, contiguous numbering, no two
        # versions sharing a fingerprint (nothing overwritten or dropped).
        assert len(versions) == 2 * puts_each
        assert [entry.version for entry in versions] == list(
            range(1, 2 * puts_each + 1)
        )
        fingerprints = {entry.fingerprint for entry in versions}
        assert len(fingerprints) == 2 * puts_each

    def test_writer_in_another_process_is_visible_without_reopen(self, tmp_path):
        root = tmp_path / "catalog"
        catalog = MappingCatalog(root)
        _run_python(_WRITER, str(root), "x", "3")
        # The long-lived handle re-reads changed shards, so it sees the other
        # process's versions without constructing a new MappingCatalog.
        assert len(catalog.versions("schema", "shared")) == 3


class TestSignalSafety:
    def test_sigkill_during_burst_preserves_committed_prefix(self, tmp_path):
        root = tmp_path / "catalog"
        writer = _run_python(_WRITER, str(root), "w", "-1", wait=False)
        seen = []
        for _ in range(5):
            line = writer.stdout.readline().strip()
            if line:
                seen.append(int(line))
        os.kill(writer.pid, signal.SIGKILL)
        writer.communicate()
        catalog = MappingCatalog(root)
        versions = catalog.versions("schema", "shared")
        # Every version the writer reported as committed must be readable.
        assert len(versions) >= max(seen)
        for entry in versions:
            catalog.get_schema("shared", entry.version)
