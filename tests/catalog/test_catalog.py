"""Tests for the disk-backed mapping catalog and the persistent checkpoint store."""

import json

import pytest

from repro.catalog import MappingCatalog, PersistentCheckpointStore
from repro.compose.composer import compose
from repro.compose.config import ComposerConfig
from repro.engine import ChainGrower, compose_chain
from repro.engine.checkpoint import CheckpointStore
from repro.exceptions import CatalogError
from repro.literature.problems import problem_by_name
from repro.schema.signature import RelationSchema, Signature
from repro.textio.records import chain_to_text, mapping_to_text


@pytest.fixture()
def chain():
    return tuple(ChainGrower(seed=5, schema_size=4).grow_many(5))


@pytest.fixture()
def catalog(tmp_path):
    return MappingCatalog(tmp_path / "catalog")


class TestVersioning:
    def test_identical_content_dedupes(self, catalog, chain):
        first = catalog.put_mapping("m", chain[0])
        second = catalog.put_mapping("m", chain[0])
        assert first.version == second.version == 1
        assert first.fingerprint == second.fingerprint
        assert len(catalog.versions("mapping", "m")) == 1

    def test_changed_content_appends_version(self, catalog, chain):
        catalog.put_mapping("m", chain[0])
        entry = catalog.put_mapping("m", chain[1])
        assert entry.version == 2
        assert catalog.get_mapping("m") == chain[1]
        assert catalog.get_mapping("m", version=1) == chain[0]

    def test_history_is_never_lost(self, catalog, chain):
        for mapping in chain:
            catalog.put_mapping("evolving", mapping)
        versions = catalog.versions("mapping", "evolving")
        assert [entry.version for entry in versions] == [1, 2, 3, 4, 5]
        for entry, mapping in zip(versions, chain):
            assert catalog.get_mapping("evolving", entry.version) == mapping

    def test_fingerprint_lookup(self, catalog, chain):
        entry = catalog.put_mapping("m", chain[0])
        matches = catalog.find_fingerprint(entry.fingerprint)
        assert matches == (entry,)
        assert entry.fingerprint == chain[0].fingerprint().hex()

    def test_unknown_entries_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get_mapping("missing")
        with pytest.raises(CatalogError):
            catalog.text("bogus-kind", "x")

    def test_unknown_version_rejected(self, catalog, chain):
        catalog.put_mapping("m", chain[0])
        with pytest.raises(CatalogError):
            catalog.get_mapping("m", version=7)

    def test_invalid_names_rejected(self, catalog, chain):
        for bad in ("", "../escape", "a/b", "a b", "-leading", "x" * 200):
            with pytest.raises(CatalogError):
                catalog.put_mapping(bad, chain[0])


class TestPersistence:
    def test_all_kinds_survive_reopen(self, tmp_path, chain):
        problem = problem_by_name("example1_movies").problem
        result = compose(problem)
        catalog = MappingCatalog(tmp_path / "cat")
        catalog.put_schema("s", chain[0].input_signature, description="first schema")
        catalog.put_mapping("m", chain[0])
        catalog.put_chain("c", chain)
        catalog.put_problem("p", problem)
        catalog.put_result("r", result)

        reopened = MappingCatalog(tmp_path / "cat")
        assert reopened.get_schema("s") == chain[0].input_signature
        assert reopened.get_mapping("m") == chain[0]
        assert reopened.get_chain("c") == chain
        assert reopened.get_problem("p").sigma12 == problem.sigma12
        assert reopened.get_result("r") == result
        assert len(reopened) == 5

    def test_index_is_valid_json(self, catalog, chain):
        catalog.put_mapping("m", chain[0])
        shards = sorted((catalog.root / "index").glob("shard-*.json"))
        assert shards, "putting an entry must create an index shard"
        found = {}
        for shard in shards:
            payload = json.loads(shard.read_text())
            assert payload["schema_version"] == 2
            for kind, by_name in payload["entries"].items():
                found.setdefault(kind, {}).update(by_name)
        assert found["mapping"]["m"][0]["version"] == 1

    def test_legacy_single_file_index_is_migrated(self, tmp_path, chain):
        catalog = MappingCatalog(tmp_path / "catalog")
        catalog.put_mapping("m", chain[0])
        catalog.put_mapping("m", chain[1])
        catalog.put_schema("s", chain[0].input_signature)
        # Rebuild a schema-version-1 single-file index from the shards, drop
        # the shards, and reopen: the catalog must migrate transparently.
        entries = {}
        for shard in (catalog.root / "index").glob("shard-*.json"):
            for kind, by_name in json.loads(shard.read_text())["entries"].items():
                entries.setdefault(kind, {}).update(by_name)
            shard.unlink()
        legacy = catalog.root / "catalog.json"
        legacy.write_text(json.dumps({"schema_version": 1, "entries": entries}))
        reopened = MappingCatalog(tmp_path / "catalog")
        assert not legacy.exists()
        assert reopened.get_mapping("m") == chain[1]
        assert reopened.get_mapping("m", version=1) == chain[0]
        assert reopened.get_schema("s") == chain[0].input_signature

    def test_record_files_are_the_text_format(self, catalog, chain):
        entry = catalog.put_mapping("m", chain[0], description="readable on disk")
        stored = (catalog.root / entry.path).read_text()
        assert stored == mapping_to_text(chain[0], name="m", description="readable on disk")

    def test_result_dedupe_ignores_timings(self, catalog):
        problem = problem_by_name("example1_movies").problem
        first = catalog.put_result("r", compose(problem))
        second = catalog.put_result("r", compose(problem))
        assert first.version == second.version == 1

    def test_add_text_ingests_and_validates(self, catalog, chain):
        entry = catalog.add_text(mapping_to_text(chain[0], name="imported"))
        assert entry.kind == "mapping" and entry.name == "imported"
        with pytest.raises(CatalogError):
            catalog.add_text("# kind: mapping\n[input]\nR/2\n")  # malformed
        with pytest.raises(CatalogError):
            catalog.add_text(mapping_to_text(chain[0]))  # nameless

    def test_stats(self, catalog, chain):
        catalog.put_mapping("m", chain[0])
        catalog.put_chain("c", chain)
        stats = catalog.stats()
        assert stats["kinds"]["mapping"] == {"names": 1, "versions": 1}
        assert stats["total_versions"] == 2


class TestDeltaChains:
    def test_versions_reconstruct_exactly(self, catalog, chain):
        catalog.put_chain("c", chain[:2])
        catalog.put_chain("c", chain[:4])
        catalog.put_chain("c", chain)
        assert catalog.get_chain("c", version=1) == chain[:2]
        assert catalog.get_chain("c", version=2) == chain[:4]
        assert catalog.get_chain("c") == chain

    def test_later_versions_are_stored_as_deltas(self, catalog, chain):
        catalog.put_chain("c", chain[:2])
        catalog.put_chain("c", chain[:4])
        catalog.put_chain("c", chain)
        assert "# kind: chain\n" in catalog.raw_text("chain", "c", version=1)
        for version in (2, 3):
            raw = catalog.raw_text("chain", "c", version=version)
            assert "# kind: chain-delta" in raw
        # An n-edit append-one-hop history stores O(n) hops, not O(n^2): the
        # v3 edit appended one hop, so its delta carries exactly one hop.
        assert catalog.raw_text("chain", "c", version=3).count("[constraints.") == 1
        full_current = len(chain_to_text(chain, name="c"))
        delta_size = len(catalog.raw_text("chain", "c", version=3))
        assert delta_size < full_current

    def test_text_materializes_deltas(self, catalog, chain):
        catalog.put_chain("c", chain[:3], description="evolving")
        catalog.put_chain("c", chain, description="evolving")
        materialized = catalog.text("chain", "c")
        assert materialized == chain_to_text(chain, name="c", description="evolving")
        # Materialized text is self-contained: re-ingesting it elsewhere works.
        other = MappingCatalog(catalog.root.parent / "other")
        assert other.add_text(materialized).kind == "chain"
        assert other.get_chain("c") == chain

    def test_revert_appends_with_the_original_fingerprint(self, catalog, chain):
        catalog.put_chain("c", chain[:3])
        catalog.put_chain("c", chain)
        entry = catalog.put_chain("c", chain[:3])  # revert to the old content
        assert entry.version == 3  # only the *latest* version dedupes
        assert entry.fingerprint == catalog.entry("chain", "c", 1).fingerprint
        assert catalog.get_chain("c", version=3) == chain[:3]

    def test_suffix_replacement_delta(self, catalog, chain):
        catalog.put_chain("c", chain)
        catalog.put_chain("c", chain[:3])
        entry = catalog.put_chain("c", chain)  # replace the suffix back
        assert entry.version == 3
        assert "# kind: chain-delta" in catalog.raw_text("chain", "c", version=3)
        assert catalog.get_chain("c", version=3) == chain
        assert catalog.get_chain("c", version=2) == chain[:3]

    def test_damaged_base_file_does_not_poison_new_versions(self, catalog, chain):
        catalog.put_chain("c", chain[:3])
        entry = catalog.put_chain("c", chain[:4])
        (catalog.root / catalog.entry("chain", "c", 1).path).write_text("garbage")
        stored = catalog.put_chain("c", chain)  # base unreadable -> full record
        assert stored.version == entry.version + 1
        assert "# kind: chain\n" in catalog.raw_text("chain", "c", version=stored.version)
        assert catalog.get_chain("c") == chain


class TestCatalogGC:
    def test_result_gc_keeps_newest_versions(self, catalog):
        first = compose(problem_by_name("example1_movies").problem)
        second = compose(problem_by_name("example3_inclusion_chain").problem)
        catalog.put_result("r", first)
        catalog.put_result("r", second)
        report = catalog.gc(result_keep_versions=1, dry_run=True)
        assert report["results"]["removed"] == 1
        assert len(catalog.versions("result", "r")) == 2  # dry run touches nothing
        report = catalog.gc(result_keep_versions=1)
        assert report["results"] == {"examined": 2, "removed": 1, "retained": 1}
        assert [e.version for e in catalog.versions("result", "r")] == [2]
        assert catalog.get_result("r").constraints.to_text() == second.constraints.to_text()
        with pytest.raises(CatalogError):
            catalog.get_result("r", version=1)

    def test_result_gc_age_bound_spares_recent_versions(self, catalog):
        catalog.put_result("r", compose(problem_by_name("example1_movies").problem))
        catalog.put_result("r", compose(problem_by_name("example3_inclusion_chain").problem))
        report = catalog.gc(result_keep_versions=1, result_max_age_seconds=3600)
        assert report["results"]["removed"] == 0  # both versions are younger than 1h
        assert len(catalog.versions("result", "r")) == 2

    def test_checkpoint_gc_bounds_disk_and_keeps_prefix_reuse(self, tmp_path, chain):
        hops = len(chain) - 1
        catalog = MappingCatalog(tmp_path / "catalog")
        compose_chain(chain, checkpoints=catalog.checkpoints)
        assert catalog.checkpoints.disk_entries() == hops
        report = catalog.gc(checkpoint_max_files=2)
        assert report["checkpoints"]["removed"] == hops - 2
        assert catalog.checkpoints.disk_entries() == 2
        # LRU retains the most recently written = deepest checkpoints, and a
        # checkpoint is a self-contained state: prefix reuse still covers the
        # whole chain from the single deepest file.
        fresh = MappingCatalog(tmp_path / "catalog")
        result = compose_chain(chain, checkpoints=fresh.checkpoints)
        assert result.reused_hops == hops

    def test_checkpoint_gc_by_age(self, tmp_path, chain):
        import os as _os
        import time as _time

        catalog = MappingCatalog(tmp_path / "catalog")
        compose_chain(chain, checkpoints=catalog.checkpoints)
        paths = sorted((tmp_path / "catalog" / "checkpoints").glob("*.ckpt"))
        stale = _time.time() - 7200
        for path in paths[:2]:
            _os.utime(path, (stale, stale))
        report = catalog.gc(checkpoint_max_age_seconds=3600)
        assert report["checkpoints"]["removed"] == 2
        assert catalog.checkpoints.disk_entries() == len(chain) - 1 - 2


class TestPersistentCheckpoints:
    def test_writes_through_and_reads_back(self, tmp_path, chain):
        store = PersistentCheckpointStore(tmp_path / "ckpt")
        result = compose_chain(chain, checkpoints=store)
        assert store.disk_writes == len(result.hops)
        assert store.disk_entries() == len(result.hops)

        fresh = PersistentCheckpointStore(tmp_path / "ckpt")
        warm = compose_chain(chain, checkpoints=fresh)
        assert warm.reused_hops == len(warm.hops)
        assert warm.constraints.to_text() == result.constraints.to_text()
        assert fresh.disk_hits == 1  # the deepest prefix probe answered from disk

    def test_restart_reuse_via_catalog(self, tmp_path, chain):
        catalog = MappingCatalog(tmp_path / "cat")
        catalog.put_chain("history", chain)
        cold = compose_chain(catalog.get_chain("history"), checkpoints=catalog.checkpoints)
        assert cold.reused_hops == 0

        restarted = MappingCatalog(tmp_path / "cat")  # fresh instance = new process
        warm = compose_chain(
            restarted.get_chain("history"), checkpoints=restarted.checkpoints
        )
        assert warm.reused_hops == len(warm.hops)
        assert warm.constraints.to_text() == cold.constraints.to_text()
        assert tuple(warm.residual_symbols) == tuple(cold.residual_symbols)

    def test_shorter_chain_reuses_the_stored_prefix(self, tmp_path, chain):
        store = PersistentCheckpointStore(tmp_path / "ckpt")
        compose_chain(chain, checkpoints=store)

        fresh = PersistentCheckpointStore(tmp_path / "ckpt")
        result = compose_chain(chain[:-1], checkpoints=fresh)
        assert result.reused_hops == len(result.hops)  # strict prefix fully reused
        assert fresh.disk_hits == 1

    def test_config_change_invalidates(self, tmp_path, chain):
        store = PersistentCheckpointStore(tmp_path / "ckpt")
        compose_chain(chain, checkpoints=store)
        fresh = PersistentCheckpointStore(tmp_path / "ckpt")
        other = compose_chain(chain, ComposerConfig.cost_guided(), checkpoints=fresh)
        assert other.reused_hops == 0

    def test_corrupt_file_is_a_miss(self, tmp_path, chain):
        store = PersistentCheckpointStore(tmp_path / "ckpt")
        compose_chain(chain, checkpoints=store)
        for path in (tmp_path / "ckpt").glob("*.ckpt"):
            path.write_bytes(b"not a pickle")
        fresh = PersistentCheckpointStore(tmp_path / "ckpt")
        result = compose_chain(chain, checkpoints=fresh)
        assert result.reused_hops == 0  # corrupt files ignored, outputs recomputed
        assert result.constraints.to_text()
        # The corrupt files must not be permanent: the failed loads discard
        # them, so the recompute's put() rewrites valid checkpoints that the
        # next process can reuse.
        assert fresh.disk_invalid > 0
        rewarmed = PersistentCheckpointStore(tmp_path / "ckpt")
        again = compose_chain(chain, checkpoints=rewarmed)
        assert again.reused_hops == len(chain) - 1  # every hop checkpoint valid again
        assert again.constraints.to_text() == result.constraints.to_text()

    def test_outputs_identical_with_and_without_store(self, tmp_path, chain):
        bare = compose_chain(chain)
        stored = compose_chain(
            chain, checkpoints=PersistentCheckpointStore(tmp_path / "ckpt")
        )
        memory = compose_chain(chain, checkpoints=CheckpointStore())
        assert (
            bare.constraints.to_text()
            == stored.constraints.to_text()
            == memory.constraints.to_text()
        )

    def test_warm_and_purge(self, tmp_path, chain):
        store = PersistentCheckpointStore(tmp_path / "ckpt")
        compose_chain(chain, checkpoints=store)
        on_disk = store.disk_entries()

        fresh = PersistentCheckpointStore(tmp_path / "ckpt")
        assert fresh.warm() == on_disk
        assert len(fresh.snapshot()) == on_disk  # now visible to process seeding

        assert fresh.purge() == on_disk
        assert fresh.disk_entries() == 0
        assert compose_chain(chain, checkpoints=fresh).reused_hops == 0

    def test_process_backend_restart_seeded_from_disk(self, tmp_path, chain):
        from repro.engine import BatchComposer
        from repro.engine.batch import BatchConfig

        store = PersistentCheckpointStore(tmp_path / "ckpt")
        reference = compose_chain(chain, checkpoints=store)

        # A restarted process-backend composer: its persistent store starts
        # with an empty memory table, but run_chains warms it from disk
        # before seeding the pool, so workers resume the recorded prefix.
        fresh = PersistentCheckpointStore(tmp_path / "ckpt")
        composer = BatchComposer(
            BatchConfig(backend="process", max_workers=1), checkpoints=fresh
        )
        report = composer.run_chains([chain])
        assert report.all_succeeded
        (warm,) = report.results()
        assert warm.reused_hops == len(warm.hops)
        assert warm.constraints.to_text() == reference.constraints.to_text()

    def test_memory_eviction_falls_back_to_disk(self, tmp_path, chain):
        store = PersistentCheckpointStore(tmp_path / "ckpt", max_entries=2)
        result = compose_chain(chain, checkpoints=store)
        # The bounded memory table evicted, but the files remain.
        assert store.disk_entries() == len(result.hops)
        warm = compose_chain(chain, checkpoints=store)
        assert warm.reused_hops == len(warm.hops)
