"""Tests for the catalog's replication journal.

Two properties carry the replication protocol and are exercised here with
seeded generators (the style of ``tests/textio/test_property_textio.py``):

* **Byte stability** — the canonical JSON encoding means
  ``encode_entry(decode_entry(data)[0]) == data`` for every well-formed
  entry, so replicas can compare journals byte for byte.
* **Torn-tail recovery** — truncating the segment mid-record at *every*
  byte offset of the last entry must leave a journal that heals cleanly:
  all fully-written entries survive, the partial one disappears, and the
  next append continues the sequence.
"""

import json
import os
import random

import pytest

from repro import faults
from repro.catalog import MappingCatalog
from repro.catalog.journal import (
    CatalogJournal,
    decode_entry,
    encode_entry,
    scan_entries,
)
from repro.engine import ChainGrower
from repro.exceptions import JournalError
from repro.faults import FaultInjector

NUM_CASES = 25


def _random_payload(rng: random.Random) -> dict:
    """A random JSON-able journal payload: nested dicts/lists/scalars."""

    def value(depth: int):
        choices = ["str", "int", "float", "bool", "none"]
        if depth < 2:
            choices += ["list", "dict"]
        kind = rng.choice(choices)
        if kind == "str":
            return "".join(rng.choice("abcdefgh_:/.-0123456789") for _ in range(rng.randrange(0, 12)))
        if kind == "int":
            return rng.randrange(-(10**9), 10**9)
        if kind == "float":
            return rng.randrange(-(10**6), 10**6) / 128.0
        if kind == "bool":
            return rng.random() < 0.5
        if kind == "none":
            return None
        if kind == "list":
            return [value(depth + 1) for _ in range(rng.randrange(0, 4))]
        return {f"k{idx}": value(depth + 1) for idx in range(rng.randrange(0, 4))}

    payload = {f"field_{idx}": value(0) for idx in range(rng.randrange(1, 6))}
    payload["op"] = rng.choice(["put", "evict"])
    payload["seq"] = rng.randrange(1, 10**6)
    return payload


class TestEncoding:
    def test_round_trip_is_byte_stable(self):
        """encode -> decode -> encode reproduces the exact bytes, 25 seeds."""
        for case in range(NUM_CASES):
            rng = random.Random(1000 + case)
            payload = _random_payload(rng)
            data = encode_entry(payload)
            decoded, consumed = decode_entry(data)
            assert consumed == len(data)
            assert decoded == payload
            assert encode_entry(decoded) == data, f"case {case} not byte-stable"

    def test_encoding_is_deterministic_under_key_order(self):
        a = encode_entry({"b": 1, "a": 2})
        b = encode_entry({"a": 2, "b": 1})
        assert a == b

    def test_decode_rejects_corruption(self):
        data = encode_entry({"op": "put", "seq": 1})
        flipped = bytearray(data)
        flipped[-1] ^= 0xFF
        with pytest.raises(JournalError):
            decode_entry(bytes(flipped))
        with pytest.raises(JournalError):
            decode_entry(data[: len(data) - 1])
        with pytest.raises(JournalError):
            decode_entry(data[:3])

    def test_scan_stops_at_first_bad_entry(self):
        whole = encode_entry({"seq": 1}) + encode_entry({"seq": 2})
        torn = whole + encode_entry({"seq": 3})[:5]
        entries, clean = scan_entries(torn)
        assert [entry["seq"] for entry in entries] == [1, 2]
        assert clean == len(whole)


class TestAppendRead:
    def test_append_assigns_monotonic_seqs(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=4)
        seqs = [journal.append(2, {"op": "put", "n": n}) for n in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert journal.last_seq(2) == 5
        entries = journal.read_since(2, since=0)
        assert [entry["n"] for entry in entries] == [0, 1, 2, 3, 4]
        assert all(entry["shard"] == 2 for entry in entries)

    def test_shards_are_independent(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=4)
        journal.append(0, {"op": "put"})
        journal.append(1, {"op": "put"})
        journal.append(1, {"op": "put"})
        assert journal.last_seqs() == {0: 1, 1: 2, 2: 0, 3: 0}

    def test_explicit_seq_is_idempotent(self, tmp_path):
        """A follower re-applying an already-journaled entry is a no-op."""
        journal = CatalogJournal(tmp_path / "journal", num_shards=1)
        journal.append(0, {"op": "put", "n": 1}, seq=7)
        assert journal.append(0, {"op": "put", "n": 1}, seq=7) == 7
        assert journal.append(0, {"op": "put", "n": 0}, seq=3) == 3  # below tail: no-op
        entries = journal.read_since(0)
        assert [entry["seq"] for entry in entries] == [7]
        assert journal.append(0, {"op": "put", "n": 2}) == 8

    def test_read_since_cursor_and_limit(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=1)
        for n in range(10):
            journal.append(0, {"n": n})
        assert [e["seq"] for e in journal.read_since(0, since=7)] == [8, 9, 10]
        assert [e["seq"] for e in journal.read_since(0, since=2, limit=3)] == [3, 4, 5]
        assert journal.read_since(0, since=10) == []

    def test_segment_rotation_preserves_order(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=1, max_segment_bytes=64)
        for n in range(20):
            journal.append(0, {"n": n, "pad": "x" * 16})
        assert len(journal.segments(0)) > 1
        entries = journal.read_since(0)
        assert [entry["seq"] for entry in entries] == list(range(1, 21))
        # A fresh handle over the same directory sees the same tail state.
        reopened = CatalogJournal(tmp_path / "journal", num_shards=1, max_segment_bytes=64)
        assert reopened.last_seq(0) == 20
        assert reopened.append(0, {"n": 20}) == 21

    def test_shard_bounds_checked(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=2)
        with pytest.raises(JournalError):
            journal.append(2, {})
        with pytest.raises(JournalError):
            journal.read_since(-1)


class TestTornTail:
    def test_truncation_at_every_byte_offset_recovers(self, tmp_path):
        """Cut the segment anywhere inside the last entry; recovery is clean.

        For every byte offset within the final record (header and body alike)
        the reopened journal must report the fully-written prefix, heal the
        tail on the next append, and continue the sequence without gaps.
        """
        base = tmp_path / "base"
        journal = CatalogJournal(base, num_shards=1)
        for n in range(3):
            journal.append(0, {"op": "put", "n": n, "pad": "y" * 8})
        (segment,) = journal.segments(0)
        whole = segment.read_bytes()
        _, keep = scan_entries(whole[: len(whole) - 1])  # start of the last entry
        last_entry_start = keep

        for cut in range(last_entry_start + 1, len(whole)):
            root = tmp_path / f"cut-{cut}"
            shard_dir = root / "shard-00"
            shard_dir.mkdir(parents=True)
            (shard_dir / segment.name).write_bytes(whole[:cut])

            torn = CatalogJournal(root, num_shards=1)
            # Readers stop at the tear without modifying the file.
            assert [e["n"] for e in torn.read_since(0)] == [0, 1]
            assert torn.last_seq(0) == 2
            assert os.path.getsize(shard_dir / segment.name) == cut
            # The next append (under the shard lock) heals and continues.
            assert torn.append(0, {"op": "put", "n": 99}) == 3
            assert torn.truncated_tails == 1
            entries = torn.read_since(0)
            assert [e["n"] for e in entries] == [0, 1, 99]
            assert [e["seq"] for e in entries] == [1, 2, 3]

    def test_wholly_torn_segment_keeps_sequence(self, tmp_path):
        """Even a segment with zero clean entries preserves the seq counter."""
        journal = CatalogJournal(tmp_path / "journal", num_shards=1, max_segment_bytes=1)
        for n in range(3):
            journal.append(0, {"n": n})  # max_segment_bytes=1: one entry per segment
        tail = journal.segments(0)[-1]
        tail.write_bytes(tail.read_bytes()[:3])  # tear the whole only entry
        reopened = CatalogJournal(tmp_path / "journal", num_shards=1, max_segment_bytes=1)
        assert reopened.last_seq(0) == 2  # the torn entry was never acknowledged
        assert reopened.append(0, {"n": 99}) == 3

    def test_injected_torn_append_heals_on_retry(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=1)
        journal.append(0, {"n": 0})
        faults.install(FaultInjector.from_text("journal.append.torn:torn:limit=1"))
        try:
            with pytest.raises(OSError):
                journal.append(0, {"n": 1})
            # A torn prefix landed; the retry truncates it and appends cleanly.
            assert journal.append(0, {"n": 1}) == 2
        finally:
            faults.clear()
        assert journal.truncated_tails == 1
        assert [e["n"] for e in journal.read_since(0)] == [0, 1]

    def test_injected_fsync_failure_surfaces(self, tmp_path):
        """A failed fsync raises to the caller, so the mutation is not acked.

        The entry's bytes may still be whole on disk — that is fine: it was
        never acknowledged, and replay keyed on fingerprints absorbs the
        duplicate the retry appends.
        """
        journal = CatalogJournal(tmp_path / "journal", num_shards=1)
        faults.install(FaultInjector.from_text("journal.append.fsync:eio:limit=1"))
        try:
            with pytest.raises(OSError):
                journal.append(0, {"n": 0})
            retried = journal.append(0, {"n": 0})
        finally:
            faults.clear()
        entries = journal.read_since(0)
        assert entries[-1]["seq"] == retried
        assert all(entry["n"] == 0 for entry in entries)


class TestRetention:
    def test_gc_drops_old_segments_but_never_the_tail(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=1, max_segment_bytes=1)
        for n in range(6):
            journal.append(0, {"n": n})
        assert len(journal.segments(0)) == 6
        preview = journal.gc(max_segments=2, dry_run=True)
        assert preview["removed"] == 4 and len(journal.segments(0)) == 6
        report = journal.gc(max_segments=2)
        assert report["removed"] == 4
        assert len(journal.segments(0)) == 2
        # The tail survives, so the sequence counter does too.
        assert journal.last_seq(0) == 6
        assert journal.append(0, {"n": 6}) == 7
        assert [e["seq"] for e in journal.read_since(0, since=4)] == [5, 6, 7]

    def test_gc_by_age(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=1, max_segment_bytes=1)
        for n in range(3):
            journal.append(0, {"n": n})
        old = journal.segments(0)[0]
        os.utime(old, (1, 1))
        report = journal.gc(max_age_seconds=3600)
        assert report["removed"] == 1
        assert old not in journal.segments(0)

    def test_gc_validates_parameters(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=1)
        with pytest.raises(JournalError):
            journal.gc(max_segments=0)
        with pytest.raises(JournalError):
            journal.gc(max_age_seconds=-1)

    def test_stats(self, tmp_path):
        journal = CatalogJournal(tmp_path / "journal", num_shards=2)
        journal.append(0, {"n": 0})
        journal.append(1, {"n": 1})
        stats = journal.stats()
        assert stats["segments"] == 2
        assert stats["bytes"] > 0
        assert stats["last_seqs"] == {"0": 1, "1": 1}
        assert stats["truncated_tails"] == 0


class TestCatalogWiring:
    def test_put_is_journaled_before_publish(self, tmp_path):
        """Every acknowledged version has a matching journal entry."""
        catalog = MappingCatalog(tmp_path / "cat")
        mapping = next(iter(ChainGrower(seed=3, schema_size=4).grow_many(1)))
        entry = catalog.put_mapping("m", mapping)
        shard = catalog._shard_id("mapping", "m")
        (journaled,) = catalog.journal.read_since(shard)
        assert journaled["op"] == "put"
        assert journaled["kind"] == "mapping"
        assert journaled["name"] == "m"
        assert journaled["record"]["fingerprint"] == entry.fingerprint
        assert journaled["text"] == catalog.raw_text("mapping", "m")

    def test_full_mirror_is_fingerprint_identical(self, tmp_path):
        """Replaying every journal entry reconstructs an identical catalog."""
        primary = MappingCatalog(tmp_path / "primary")
        chain = tuple(ChainGrower(seed=11, schema_size=4).grow_many(4))
        for index, mapping in enumerate(chain):
            primary.put_mapping(f"map-{index % 2}", mapping)
        primary.put_chain("the-chain", chain[:2])
        primary.put_chain("the-chain", chain[:3])  # stored as a delta

        replica = MappingCatalog(tmp_path / "replica")
        for shard in range(primary.journal.num_shards):
            for entry in primary.journal.read_since(shard):
                outcome = replica.apply_journal_entry(entry)
                assert outcome in {"applied", "skipped"}

        for kind in ("mapping", "chain"):
            assert replica.names(kind) == primary.names(kind)
            for name in primary.names(kind):
                ours = [e.fingerprint for e in replica.versions(kind, name)]
                theirs = [e.fingerprint for e in primary.versions(kind, name)]
                assert ours == theirs
                assert replica.raw_text(kind, name) == primary.raw_text(kind, name)
                assert replica.verify(kind, name)
        # Replay is idempotent: a second pass changes nothing.
        for shard in range(primary.journal.num_shards):
            for entry in primary.journal.read_since(shard):
                assert replica.apply_journal_entry(entry) == "skipped"

    def test_apply_rejects_unknown_op(self, tmp_path):
        from repro.exceptions import CatalogError

        catalog = MappingCatalog(tmp_path / "cat")
        with pytest.raises(CatalogError):
            catalog.apply_journal_entry({"op": "mangle", "kind": "mapping", "name": "x"})

    def test_journal_entries_are_canonical_json(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "cat")
        mapping = next(iter(ChainGrower(seed=9, schema_size=4).grow_many(1)))
        catalog.put_mapping("m", mapping)
        shard = catalog._shard_id("mapping", "m")
        (segment,) = catalog.journal.segments(shard)
        data = segment.read_bytes()
        (entry,), clean = scan_entries(data)
        assert clean == len(data)
        assert encode_entry(entry) == data  # byte-stable on disk too
        assert json.loads(json.dumps(entry)) == entry
