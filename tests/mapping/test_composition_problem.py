"""Tests for CompositionProblem."""

import pytest

from repro.algebra.expressions import Relation
from repro.constraints.constraint import ContainmentConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import SchemaError
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping
from repro.schema.signature import Signature


def simple_problem():
    return CompositionProblem(
        sigma1=Signature.from_arities({"R": 2}),
        sigma2=Signature.from_arities({"S": 2}),
        sigma3=Signature.from_arities({"T": 2}),
        sigma12=ConstraintSet([ContainmentConstraint(Relation("R", 2), Relation("S", 2))]),
        sigma23=ConstraintSet([ContainmentConstraint(Relation("S", 2), Relation("T", 2))]),
        name="chain",
    )


class TestValidation:
    def test_valid_problem(self):
        problem = simple_problem()
        assert problem.intermediate_symbols() == ("S",)
        assert problem.operator_count() == 0
        assert len(problem.all_constraints) == 2
        assert set(problem.combined_signature.names()) == {"R", "S", "T"}

    def test_overlapping_signatures_rejected(self):
        with pytest.raises(SchemaError):
            CompositionProblem(
                sigma1=Signature.from_arities({"R": 2}),
                sigma2=Signature.from_arities({"R": 2}),
                sigma3=Signature.from_arities({"T": 2}),
                sigma12=ConstraintSet(),
                sigma23=ConstraintSet(),
            )

    def test_sigma12_outside_scope_rejected(self):
        with pytest.raises(SchemaError):
            CompositionProblem(
                sigma1=Signature.from_arities({"R": 2}),
                sigma2=Signature.from_arities({"S": 2}),
                sigma3=Signature.from_arities({"T": 2}),
                sigma12=ConstraintSet(
                    [ContainmentConstraint(Relation("T", 2), Relation("S", 2))]
                ),
                sigma23=ConstraintSet(),
            )

    def test_sigma23_outside_scope_rejected(self):
        with pytest.raises(SchemaError):
            CompositionProblem(
                sigma1=Signature.from_arities({"R": 2}),
                sigma2=Signature.from_arities({"S": 2}),
                sigma3=Signature.from_arities({"T": 2}),
                sigma12=ConstraintSet(),
                sigma23=ConstraintSet(
                    [ContainmentConstraint(Relation("R", 2), Relation("S", 2))]
                ),
            )

    def test_empty_outer_signatures_allowed(self):
        problem = CompositionProblem(
            sigma1=Signature(),
            sigma2=Signature.from_arities({"S": 2}),
            sigma3=Signature.from_arities({"T": 2}),
            sigma12=ConstraintSet(),
            sigma23=ConstraintSet([ContainmentConstraint(Relation("S", 2), Relation("T", 2))]),
        )
        assert problem.intermediate_symbols() == ("S",)


class TestFromMappings:
    def test_from_mappings(self):
        m12 = Mapping(
            Signature.from_arities({"R": 2}),
            Signature.from_arities({"S": 2}),
            ConstraintSet([ContainmentConstraint(Relation("R", 2), Relation("S", 2))]),
        )
        m23 = Mapping(
            Signature.from_arities({"S": 2}),
            Signature.from_arities({"T": 2}),
            ConstraintSet([ContainmentConstraint(Relation("S", 2), Relation("T", 2))]),
        )
        problem = CompositionProblem.from_mappings(m12, m23, name="chain")
        assert problem.name == "chain"
        assert problem.sigma2.names() == ("S",)

    def test_from_mappings_middle_mismatch_rejected(self):
        m12 = Mapping(
            Signature.from_arities({"R": 2}),
            Signature.from_arities({"S": 2}),
            ConstraintSet(),
        )
        m23 = Mapping(
            Signature.from_arities({"X": 2}),
            Signature.from_arities({"T": 2}),
            ConstraintSet(),
        )
        with pytest.raises(SchemaError):
            CompositionProblem.from_mappings(m12, m23)

    def test_repr_mentions_name(self):
        assert "chain" in repr(simple_problem())
