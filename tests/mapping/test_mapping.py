"""Tests for Mapping and identity mappings."""

import pytest

from repro.algebra.expressions import Projection, Relation
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import ConstraintError, SchemaError
from repro.mapping.mapping import Mapping, identity_mapping
from repro.schema.instance import Instance
from repro.schema.signature import RelationSchema, Signature


@pytest.fixture
def projection_mapping():
    source = Signature.from_arities({"R": 2})
    target = Signature.from_arities({"V": 1})
    constraints = ConstraintSet(
        [EqualityConstraint(Relation("V", 1), Projection(Relation("R", 2), (0,)))]
    )
    return Mapping(source, target, constraints)


class TestConstruction:
    def test_basic(self, projection_mapping):
        assert projection_mapping.constraint_count() == 1
        assert projection_mapping.operator_count() == 1

    def test_signatures_must_be_disjoint(self):
        signature = Signature.from_arities({"R": 2})
        with pytest.raises(SchemaError):
            Mapping(signature, signature, ConstraintSet())

    def test_constraints_must_stay_inside_signatures(self):
        source = Signature.from_arities({"R": 2})
        target = Signature.from_arities({"V": 2})
        stray = ConstraintSet([ContainmentConstraint(Relation("Z", 2), Relation("V", 2))])
        with pytest.raises(ConstraintError):
            Mapping(source, target, stray)

    def test_from_constraints(self):
        mapping = Mapping.from_constraints(
            Signature.from_arities({"R": 2}),
            Signature.from_arities({"V": 2}),
            [ContainmentConstraint(Relation("R", 2), Relation("V", 2))],
        )
        assert mapping.constraint_count() == 1

    def test_combined_signature(self, projection_mapping):
        assert set(projection_mapping.combined_signature.names()) == {"R", "V"}


class TestInverse:
    def test_inverse_swaps_signatures(self, projection_mapping):
        inverse = projection_mapping.inverse()
        assert inverse.input_signature == projection_mapping.output_signature
        assert inverse.output_signature == projection_mapping.input_signature
        assert inverse.constraints == projection_mapping.constraints

    def test_double_inverse_is_identity(self, projection_mapping):
        assert projection_mapping.inverse().inverse() == projection_mapping


class TestRelates:
    def test_relates_positive(self, projection_mapping):
        source = Instance({"R": {(1, "a"), (2, "b")}})
        target = Instance({"V": {(1,), (2,)}})
        assert projection_mapping.relates(source, target)

    def test_relates_negative(self, projection_mapping):
        source = Instance({"R": {(1, "a")}})
        target = Instance({"V": set()})
        assert not projection_mapping.relates(source, target)


class TestIdentityMapping:
    def test_default_renaming(self):
        signature = Signature.from_arities({"R": 2, "S": 1})
        mapping = identity_mapping(signature)
        assert set(mapping.output_signature.names()) == {"R_v2", "S_v2"}
        assert mapping.constraint_count() == 2

    def test_explicit_renaming(self):
        signature = Signature.from_arities({"R": 2})
        renamed = Signature.from_arities({"Rnew": 2})
        mapping = identity_mapping(signature, renamed)
        assert str(list(mapping.constraints)[0]) == "R/2 = Rnew/2"

    def test_renaming_must_match_arities(self):
        signature = Signature.from_arities({"R": 2})
        with pytest.raises(SchemaError):
            identity_mapping(signature, Signature.from_arities({"Rnew": 3}))

    def test_renaming_must_match_count(self):
        signature = Signature.from_arities({"R": 2})
        with pytest.raises(SchemaError):
            identity_mapping(signature, Signature.from_arities({"A": 2, "B": 2}))

    def test_identity_mapping_relates_equal_contents(self):
        signature = Signature(
            [RelationSchema("R", 2)]
        )
        mapping = identity_mapping(signature)
        source = Instance({"R": {(1, 2)}})
        assert mapping.relates(source, Instance({"R_v2": {(1, 2)}}))
        assert not mapping.relates(source, Instance({"R_v2": set()}))
