"""Tests for the experiment infrastructure (reporting, configurations, editing study)."""

from repro.compose.config import ComposerConfig
from repro.evolution.config import SimulatorConfig
from repro.experiments.reporting import format_float, format_percent, format_table
from repro.experiments.runner import (
    STANDARD_CONFIGURATIONS,
    ExperimentConfiguration,
    mean,
    median,
    run_editing_study,
)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [(1, 2), (333, 4)], title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_helpers(self):
        assert format_float(0.12345) == "0.123"
        assert format_percent(0.5) == "50.0%"


class TestStatistics:
    def test_median_and_mean(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert median([]) == 0.0
        assert mean([]) == 0.0


class TestStandardConfigurations:
    def test_four_paper_configurations(self):
        names = [configuration.name for configuration in STANDARD_CONFIGURATIONS]
        assert names == ["no keys", "keys", "no unfolding", "no right compose"]

    def test_configuration_knobs(self):
        by_name = {c.name: c for c in STANDARD_CONFIGURATIONS}
        assert by_name["keys"].simulator_config.keys_enabled
        assert not by_name["no unfolding"].composer_config.enable_view_unfolding
        assert not by_name["no right compose"].composer_config.enable_right_compose


class TestEditingStudy:
    def test_small_study(self):
        configurations = [
            ExperimentConfiguration("tiny", SimulatorConfig.no_keys(), ComposerConfig.default())
        ]
        study = run_editing_study(
            schema_size=6, num_edits=8, runs=2, configurations=configurations
        )
        assert study.configurations() == ("tiny",)
        fractions = study.fraction_by_primitive("tiny")
        assert all(0.0 <= value <= 1.0 for value in fractions.values())
        times = study.time_per_edit_by_primitive("tiny")
        assert all(value >= 0.0 for value in times.values())
        assert len(study.run_durations("tiny")) == 2
        assert study.median_run_duration("tiny") >= 0.0
        assert 0.0 <= study.total_fraction_eliminated("tiny") <= 1.0
        constraints, operators = study.mean_constraint_stats("tiny")
        assert constraints > 0 and operators >= 0
