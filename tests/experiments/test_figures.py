"""Tests for the per-figure experiment drivers (scaled-down workloads)."""

import math

from repro.compose.config import ComposerConfig
from repro.evolution.config import SimulatorConfig
from repro.experiments.figure2 import FIGURE2_PRIMITIVES, run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import FIGURE5_TRACKED_PRIMITIVES, run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.literature_study import run_literature_study
from repro.experiments.runner import ExperimentConfiguration, run_editing_study


def small_study():
    configurations = [
        ExperimentConfiguration("no keys", SimulatorConfig.no_keys(), ComposerConfig.default()),
        ExperimentConfiguration(
            "no unfolding", SimulatorConfig.no_keys(), ComposerConfig.no_view_unfolding()
        ),
    ]
    return run_editing_study(
        schema_size=6, num_edits=10, runs=2, configurations=configurations
    )


STUDY = small_study()


class TestFigure2:
    def test_series_and_table(self):
        figure = run_figure2(study=STUDY)
        assert set(figure.fractions) == {"no keys", "no unfolding"}
        for series in figure.fractions.values():
            assert all(0.0 <= value <= 1.0 for value in series.values())
        table = figure.to_table()
        assert "Figure 2" in table
        for primitive in ("AA", "Hf", "Sub"):
            assert primitive in table

    def test_primitive_axis_excludes_ar(self):
        assert "AR" not in FIGURE2_PRIMITIVES

    def test_hardest_primitives(self):
        figure = run_figure2(study=STUDY)
        hardest = figure.hardest_primitives("no keys", count=2)
        assert len(hardest) <= 2


class TestFigure3:
    def test_times_and_medians(self):
        figure = run_figure3(study=STUDY)
        for series in figure.times_ms.values():
            assert all(value >= 0.0 for value in series.values())
        assert set(figure.median_run_seconds) == {"no keys", "no unfolding"}
        assert "Figure 3" in figure.to_table()


class TestFigure4:
    def test_sorted_durations(self):
        figure = run_figure4(study=STUDY, configuration="no keys")
        assert figure.sorted_durations == sorted(figure.sorted_durations)
        assert figure.median_seconds >= 0.0
        assert figure.max_seconds >= figure.median_seconds
        assert figure.skew_ratio() >= 1.0 or figure.median_seconds == 0.0
        assert "Figure 4" in figure.to_table()


class TestFigure5:
    def test_sweep(self):
        figure = run_figure5(
            proportions=[0.0, 0.2], schema_size=6, num_edits=8, runs=1
        )
        assert figure.proportions() == [0.0, 0.2]
        assert all(0.0 <= value <= 1.0 for value in figure.total_series())
        assert all(value >= 0.0 for value in figure.time_series())
        for primitive in FIGURE5_TRACKED_PRIMITIVES:
            series = figure.primitive_series(primitive)
            assert len(series) == 2
            assert all(math.isnan(value) or 0.0 <= value <= 1.0 for value in series)
        assert "Figure 5" in figure.to_table()


class TestFigure6:
    def test_reconciliation_sweep(self):
        figure = run_figure6(schema_sizes=[4, 8], num_edits=6, tasks_per_point=1)
        assert figure.schema_sizes == [4, 8]
        for name in ("complete", "no view unfolding", "no right compose"):
            series = figure.series(name)
            assert len(series) == 2
            assert all(0.0 <= value <= 1.0 for value in series)
        assert "Figure 6" in figure.to_table()


class TestFigure7:
    def test_edit_count_sweep(self):
        figure = run_figure7(edit_counts=[5, 10], schema_size=6, tasks_per_point=1)
        assert figure.edit_counts() == [5, 10]
        assert all(0.0 <= value <= 1.0 for value in figure.fraction_series())
        assert all(value >= 0.0 for value in figure.time_series())
        assert "Figure 7" in figure.to_table()


class TestLiteratureStudy:
    def test_study_matches_documented_outcomes(self):
        study = run_literature_study()
        assert study.total_problems >= 22
        assert study.matching_expectations == study.total_problems
        assert 0.0 <= study.fraction_symbols_eliminated() <= 1.0
        assert study.fully_composed >= 15
        table = study.to_table()
        assert "Literature composition problems" in table
