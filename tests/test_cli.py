"""Tests for the ``python -m repro`` command-line interface.

Most subcommands are exercised in-process through ``main(argv)``; the
``serve`` subcommand is smoke-tested as a real subprocess (start the server,
submit one composition over HTTP, assert byte-identity with direct
``compose()`` — the same contract CI's service smoke step runs).
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.catalog import MappingCatalog
from repro.compose.composer import compose
from repro.engine import ChainGrower
from repro.literature.problems import problem_by_name
from repro.textio.format import problem_to_text
from repro.textio.records import chain_to_text, result_from_text

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "catalog-root")


@pytest.fixture()
def record_files(tmp_path):
    chain = ChainGrower(seed=13, schema_size=4).grow_many(4)
    problem = problem_by_name("example1_movies").problem
    chain_file = tmp_path / "history.txt"
    chain_file.write_text(chain_to_text(chain, name="history"))
    problem_file = tmp_path / "ex1.txt"
    problem_file.write_text(problem_to_text(problem))
    return {"chain": str(chain_file), "problem": str(problem_file)}


class TestCatalogCommands:
    def test_add_list_show(self, root, record_files, capsys):
        assert main(["--root", root, "catalog", "add",
                     record_files["chain"], record_files["problem"]]) == 0
        out = capsys.readouterr().out
        assert "chain/history v1" in out
        assert "problem/example1_movies v1" in out

        assert main(["--root", root, "catalog", "list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert {entry["kind"] for entry in listing} == {"chain", "problem"}

        assert main(["--root", root, "catalog", "show", "chain", "history"]) == 0
        shown = capsys.readouterr().out
        assert shown == MappingCatalog(root).text("chain", "history")

    def test_unknown_entry_fails_cleanly(self, root, capsys):
        assert main(["--root", root, "catalog", "show", "mapping", "missing"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, root, capsys):
        assert main(["--root", root, "catalog", "add", "no-such-file.txt"]) == 1
        assert "error:" in capsys.readouterr().err


class TestComposeCommand:
    def test_compose_problem_file(self, root, record_files, capsys):
        assert main(["--root", root, "compose", record_files["problem"],
                     "--store", "ex1-result"]) == 0
        captured = capsys.readouterr()
        result = result_from_text(captured.out)
        direct = compose(problem_by_name("example1_movies").problem)
        assert result.constraints.to_text() == direct.constraints.to_text()
        assert "stored result/ex1-result v1" in captured.err
        assert MappingCatalog(root).get_result("ex1-result") == result

    def test_compose_stored_chain_is_warm_on_second_run(self, root, record_files, capsys):
        assert main(["--root", root, "catalog", "add", record_files["chain"]]) == 0
        capsys.readouterr()
        assert main(["--root", root, "compose", "--name", "history", "--kind", "chain"]) == 0
        first = capsys.readouterr()
        assert "reused hops: 0/3" in first.err
        assert main(["--root", root, "compose", "--name", "history", "--kind", "chain"]) == 0
        second = capsys.readouterr()
        assert "reused hops: 3/3" in second.err  # persistent checkpoints
        assert second.out == first.out  # byte-identical composed mapping

    def test_compose_without_input_fails(self, root, capsys):
        assert main(["--root", root, "compose"]) == 1
        assert "error:" in capsys.readouterr().err


class TestCatalogGCCommand:
    def test_gc_bounds_checkpoints_and_prefix_reuse_survives(self, root, record_files, capsys):
        assert main(["--root", root, "catalog", "add", record_files["chain"]]) == 0
        assert main(["--root", root, "compose", "--name", "history", "--kind", "chain"]) == 0
        capsys.readouterr()
        checkpoint_dir = Path(root) / "checkpoints"
        assert len(list(checkpoint_dir.glob("*.ckpt"))) == 3

        assert main(["--root", root, "catalog", "gc",
                     "--max-checkpoint-files", "1", "--dry-run", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dry_run"] is True
        assert report["checkpoints"]["removed"] == 2
        assert len(list(checkpoint_dir.glob("*.ckpt"))) == 3  # dry run

        assert main(["--root", root, "catalog", "gc",
                     "--max-checkpoint-files", "1", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["checkpoints"] == {"examined": 3, "removed": 2, "retained": 1}
        assert len(list(checkpoint_dir.glob("*.ckpt"))) == 1

        # The retained (deepest) checkpoint still covers the whole chain.
        assert main(["--root", root, "compose", "--name", "history", "--kind", "chain"]) == 0
        assert "reused hops: 3/3" in capsys.readouterr().err

    def test_gc_prunes_old_result_versions(self, root, record_files, capsys):
        assert main(["--root", root, "compose", record_files["problem"],
                     "--store", "r"]) == 0
        capsys.readouterr()
        catalog = MappingCatalog(root)
        catalog.put_result("r", compose(problem_by_name("glav_chain").problem))
        assert len(catalog.versions("result", "r")) == 2
        assert main(["--root", root, "catalog", "gc", "--keep-result-versions", "1"]) == 0
        out = capsys.readouterr().out
        assert "results:     removed 1" in out
        assert [e.version for e in MappingCatalog(root).versions("result", "r")] == [2]


def _spawn_serve(root: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "--root", root, "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    assert "http://" in line, f"unexpected banner: {line!r}"
    return process, line.strip().rsplit(" ", 1)[-1]


def _post_compose(base: str, body: bytes, query: str = "") -> str:
    deadline = time.time() + 30
    while True:
        try:
            request = urllib.request.Request(
                base + "/compose" + query, data=body, method="POST"
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.read().decode()
        except (urllib.error.URLError, ConnectionError):
            if time.time() > deadline:
                raise
            time.sleep(0.1)


class TestServeSubprocess:
    def test_serve_smoke_byte_identical(self, root, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "--root", root, "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "http://" in line, f"unexpected banner: {line!r}"
            base = line.strip().rsplit(" ", 1)[-1]
            problem = problem_by_name("example1_movies").problem
            body = problem_to_text(problem).encode()
            deadline = time.time() + 30
            while True:
                try:
                    request = urllib.request.Request(
                        base + "/compose", data=body, method="POST"
                    )
                    with urllib.request.urlopen(request, timeout=30) as response:
                        text = response.read().decode()
                    break
                except (urllib.error.URLError, ConnectionError):
                    if time.time() > deadline:
                        raise
                    time.sleep(0.1)
            served = result_from_text(text)
            direct = compose(problem)
            assert served.constraints.to_text() == direct.constraints.to_text()
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_two_servers_share_one_catalog(self, root):
        """CI's shared-catalog smoke: two serve processes on one root,
        interleaved composes byte-identical to direct compose, and writes by
        either server visible to both."""
        chain = ChainGrower(seed=13, schema_size=4).grow_many(4)
        chain_body = chain_to_text(chain, name="history").encode()
        problem = problem_by_name("example1_movies").problem
        problem_body = problem_to_text(problem).encode()

        first, first_base = _spawn_serve(root)
        second, second_base = _spawn_serve(root)
        try:
            direct_problem = compose(problem)
            # Interleave requests across the two processes.
            a = _post_compose(first_base, problem_body)
            b = _post_compose(second_base, chain_body, "?store=composed")
            c = _post_compose(second_base, problem_body)
            d = _post_compose(first_base, chain_body, "?store=composed")
            assert (
                result_from_text(a).constraints.to_text()
                == result_from_text(c).constraints.to_text()
                == direct_problem.constraints.to_text()
            )
            assert b == d  # byte-identical composed mapping across processes

            # Both stored the identical mapping: content addressing dedupes
            # across processes, so one version exists (no lost/duped writes).
            deadline = time.time() + 30
            while True:
                try:
                    with urllib.request.urlopen(
                        second_base + "/catalog/mapping/composed", timeout=30
                    ) as response:
                        stored = response.read().decode()
                    break
                except (urllib.error.URLError, ConnectionError):
                    if time.time() > deadline:
                        raise
                    time.sleep(0.1)
            assert stored
            versions = MappingCatalog(root).versions("mapping", "composed")
            assert [entry.version for entry in versions] == [1]
        finally:
            for process in (first, second):
                process.terminate()
                process.wait(timeout=10)
