"""Tests for the MONOTONE procedure (Section 3.3)."""

import pytest

from repro.algebra.conditions import equals
from repro.algebra.expressions import (
    AntiSemiJoin,
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    SemiJoin,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.operators.monotonicity import (
    Monotonicity,
    combine_same_polarity,
    flip,
    is_monotone,
    monotonicity,
)
from repro.operators.registry import default_registry

R, S, T = Relation("R", 2), Relation("S", 2), Relation("T", 2)
M, A, I, U = (
    Monotonicity.MONOTONE,
    Monotonicity.ANTI_MONOTONE,
    Monotonicity.INDEPENDENT,
    Monotonicity.UNKNOWN,
)


class TestLeaves:
    def test_symbol_itself_is_monotone(self):
        assert monotonicity(S, "S") is M

    def test_other_relation_is_independent(self):
        assert monotonicity(R, "S") is I

    def test_special_relations_are_independent(self):
        assert monotonicity(Domain(2), "S") is I
        assert monotonicity(Empty(2), "S") is I
        assert monotonicity(ConstantRelation.singleton(1), "S") is I


class TestBasicOperators:
    @pytest.mark.parametrize("cls", [Union, Intersection])
    def test_positive_binary(self, cls):
        assert monotonicity(cls(R, S), "S") is M
        assert monotonicity(cls(S, S), "S") is M
        assert monotonicity(cls(R, T), "S") is I

    def test_cross_product(self):
        assert monotonicity(CrossProduct(S, R), "S") is M

    def test_difference_first_argument(self):
        assert monotonicity(Difference(S, R), "S") is M

    def test_difference_second_argument(self):
        assert monotonicity(Difference(R, S), "S") is A

    def test_difference_both_sides_unknown(self):
        assert monotonicity(Difference(S, S), "S") is U

    def test_selection_projection_transparent(self):
        assert monotonicity(Selection(S, equals(0, 1)), "S") is M
        assert monotonicity(Projection(S, (0,)), "S") is M
        assert monotonicity(Projection(Difference(R, S), (0,)), "S") is A

    def test_skolem_transparent(self):
        skolemized = SkolemApplication(S, SkolemFunction("f", (0,)))
        assert monotonicity(skolemized, "S") is M

    def test_nested_double_negation(self):
        # S occurs under two nested differences: anti-monotone of anti-monotone.
        expression = Difference(R, Difference(T, S))
        assert monotonicity(expression, "S") is M

    def test_paper_example_select_difference(self):
        # σ_{c1}(S) − σ_{c2}(S) is unknown in S (the paper's MONOTONE example).
        expression = Difference(Selection(S, equals(0, 1)), Selection(S, equals(0, 1)))
        assert monotonicity(expression, "S") is U

    def test_mixed_polarity_is_unknown(self):
        assert monotonicity(Union(S, Difference(R, S)), "S") is U


class TestIsMonotone:
    def test_monotone_or_independent_accepted(self):
        assert is_monotone(Union(R, S), "S")
        assert is_monotone(R, "S")

    def test_anti_and_unknown_rejected(self):
        assert not is_monotone(Difference(R, S), "S")
        assert not is_monotone(Difference(S, S), "S")


class TestExtendedOperators:
    def test_unregistered_extended_operator_is_unknown(self):
        assert monotonicity(SemiJoin(S, R, equals(0, 2)), "S") is U

    def test_unregistered_but_independent(self):
        assert monotonicity(SemiJoin(R, T, equals(0, 2)), "S") is I

    def test_semijoin_registered(self):
        registry = default_registry()
        assert monotonicity(SemiJoin(S, R, equals(0, 2)), "S", registry) is M
        assert monotonicity(SemiJoin(R, S, equals(0, 2)), "S", registry) is M

    def test_antisemijoin_registered(self):
        registry = default_registry()
        assert monotonicity(AntiSemiJoin(S, R, equals(0, 2)), "S", registry) is M
        assert monotonicity(AntiSemiJoin(R, S, equals(0, 2)), "S", registry) is A

    def test_leftouterjoin_registered(self):
        registry = default_registry()
        assert monotonicity(LeftOuterJoin(S, R, equals(0, 2)), "S", registry) is M
        assert monotonicity(LeftOuterJoin(R, S, equals(0, 2)), "S", registry) is U


class TestCombinators:
    def test_flip(self):
        assert flip(M) is A and flip(A) is M
        assert flip(I) is I and flip(U) is U

    def test_combine_same_polarity(self):
        assert combine_same_polarity((M, I)) is M
        assert combine_same_polarity((A, I)) is A
        assert combine_same_polarity((I, I)) is I
        assert combine_same_polarity((M, A)) is U
        assert combine_same_polarity((M, U)) is U


class TestSemanticSoundness:
    """MONOTONE is sound: a 'monotone' verdict must hold on concrete instances."""

    CASES = [
        Union(R, S),
        Intersection(S, T),
        CrossProduct(R, S),
        Selection(S, equals(0, 1)),
        Projection(Union(S, R), (0,)),
        Difference(S, R),
    ]

    @pytest.mark.parametrize("expression", CASES)
    def test_monotone_verdict_holds_semantically(self, expression):
        from repro.algebra.evaluation import evaluate
        from repro.schema.instance import Instance

        assert monotonicity(expression, "S") is M
        smaller = Instance({"R": {(1, 2)}, "S": {(1, 1)}, "T": {(1, 1), (1, 2)}})
        bigger = smaller.updating("S", {(1, 1), (2, 2)})
        domain = smaller.active_domain() | bigger.active_domain()
        assert evaluate(expression, smaller, extra_domain=domain) <= evaluate(
            expression, bigger, extra_domain=domain
        )

    def test_anti_monotone_verdict_holds_semantically(self):
        from repro.algebra.evaluation import evaluate
        from repro.schema.instance import Instance

        expression = Difference(R, S)
        assert monotonicity(expression, "S") is A
        smaller = Instance({"R": {(1, 2), (2, 2)}, "S": {(1, 2)}})
        bigger = smaller.updating("S", {(1, 2), (2, 2)})
        assert evaluate(expression, smaller) >= evaluate(expression, bigger)


class TestUnknownOperatorTolerance:
    def test_unknown_operator_yields_unknown_not_error(self):
        class Mystery(Expression):
            operator_name = "mystery"

            def __init__(self, child):
                self._child = child

            @property
            def arity(self):
                return self._child.arity

            @property
            def children(self):
                return (self._child,)

            def with_children(self, children):
                return Mystery(children[0])

        assert monotonicity(Mystery(S), "S") is U
        assert monotonicity(Mystery(R), "S") is I
