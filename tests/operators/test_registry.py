"""Tests for the operator registry (the extensibility mechanism)."""

import pytest

from repro.algebra.conditions import equals
from repro.algebra.expressions import Empty, Relation, SemiJoin, Union
from repro.exceptions import RegistryError
from repro.operators.monotonicity import Monotonicity
from repro.operators.registry import OperatorRegistry, OperatorRule, default_registry

R, S = Relation("R", 2), Relation("S", 2)


class TestRegistration:
    def test_register_and_lookup(self):
        registry = OperatorRegistry()
        rule = registry.register_operator(SemiJoin, description="semijoin")
        assert registry.knows(SemiJoin(R, S, equals(0, 2)))
        assert registry.rule_for(SemiJoin(R, S, equals(0, 2))) is rule
        assert SemiJoin in registry.registered_types()

    def test_unknown_operator_not_known(self):
        registry = OperatorRegistry()
        assert not registry.knows(Union(R, S))
        assert registry.rule_for(Union(R, S)) is None

    def test_unregister(self):
        registry = OperatorRegistry()
        registry.register_operator(SemiJoin)
        registry.unregister(SemiJoin)
        assert not registry.knows(SemiJoin(R, S, equals(0, 2)))
        registry.unregister(SemiJoin)  # idempotent

    def test_register_rejects_non_rule(self):
        with pytest.raises(RegistryError):
            OperatorRegistry().register("not a rule")

    def test_register_rejects_non_expression_type(self):
        with pytest.raises(RegistryError):
            OperatorRegistry().register(OperatorRule(operator_type=int))

    def test_copy_is_independent(self):
        registry = OperatorRegistry()
        registry.register_operator(SemiJoin)
        clone = registry.copy()
        clone.unregister(SemiJoin)
        assert registry.knows(SemiJoin(R, S, equals(0, 2)))
        assert not clone.knows(SemiJoin(R, S, equals(0, 2)))


class TestHooks:
    def test_monotonicity_hook(self):
        registry = OperatorRegistry()
        registry.register_operator(
            SemiJoin, monotonicity_rule=lambda expr, children: Monotonicity.MONOTONE
        )
        result = registry.combine_monotonicity(
            SemiJoin(R, S, equals(0, 2)), (Monotonicity.MONOTONE, Monotonicity.MONOTONE)
        )
        assert result is Monotonicity.MONOTONE

    def test_monotonicity_hook_absent(self):
        registry = OperatorRegistry()
        assert (
            registry.combine_monotonicity(SemiJoin(R, S, equals(0, 2)), (Monotonicity.MONOTONE,))
            is None
        )

    def test_simplify_hook(self):
        registry = OperatorRegistry()
        registry.register_operator(
            SemiJoin,
            simplification_rule=lambda expr: Empty(expr.arity)
            if isinstance(expr.right, Empty)
            else None,
        )
        assert registry.simplify_node(SemiJoin(R, Empty(2), equals(0, 2))) == Empty(2)
        assert registry.simplify_node(SemiJoin(R, S, equals(0, 2))) is None

    def test_normalization_hooks_dispatch_on_correct_side(self):
        calls = []

        def left_rule(left, right, symbol, context):
            calls.append("left")
            return [(left, right)]

        def right_rule(left, right, symbol, context):
            calls.append("right")
            return [(left, right)]

        registry = OperatorRegistry()
        registry.register_operator(
            SemiJoin, left_normalization_rule=left_rule, right_normalization_rule=right_rule
        )
        join = SemiJoin(R, S, equals(0, 2))
        registry.left_normalize(join, R, "S", None)
        registry.right_normalize(R, join, "S", None)
        assert calls == ["left", "right"]

    def test_normalization_hook_absent_returns_none(self):
        registry = OperatorRegistry()
        assert registry.left_normalize(Union(R, S), R, "S", None) is None
        assert registry.right_normalize(R, Union(R, S), "S", None) is None


class TestDefaultRegistry:
    def test_contains_extended_operators(self):
        registry = default_registry()
        from repro.algebra.expressions import AntiSemiJoin, LeftOuterJoin

        for operator in (SemiJoin, AntiSemiJoin, LeftOuterJoin):
            assert operator in registry.registered_types()

    def test_default_registry_copies_are_independent(self):
        first = default_registry()
        first.unregister(SemiJoin)
        second = default_registry()
        assert SemiJoin in second.registered_types()
