"""Tests for the extended-operator registrations (semijoin, anti-semijoin, outerjoin)."""

from repro.algebra.conditions import equals
from repro.algebra.expressions import AntiSemiJoin, Empty, LeftOuterJoin, Relation, SemiJoin
from repro.algebra.simplify import simplify_expression
from repro.operators.extended import (
    antisemijoin_monotonicity,
    leftouterjoin_monotonicity,
    semijoin_monotonicity,
)
from repro.operators.monotonicity import Monotonicity
from repro.operators.registry import default_registry

R, S = Relation("R", 2), Relation("S", 2)
M, A, I, U = (
    Monotonicity.MONOTONE,
    Monotonicity.ANTI_MONOTONE,
    Monotonicity.INDEPENDENT,
    Monotonicity.UNKNOWN,
)


class TestMonotonicityRules:
    def test_semijoin_rule(self):
        assert semijoin_monotonicity(None, (M, M)) is M
        assert semijoin_monotonicity(None, (M, I)) is M
        assert semijoin_monotonicity(None, (A, I)) is A
        assert semijoin_monotonicity(None, (M, A)) is U

    def test_antisemijoin_rule(self):
        assert antisemijoin_monotonicity(None, (M, I)) is M
        assert antisemijoin_monotonicity(None, (I, M)) is A
        assert antisemijoin_monotonicity(None, (I, A)) is M
        assert antisemijoin_monotonicity(None, (M, M)) is U

    def test_leftouterjoin_rule(self):
        assert leftouterjoin_monotonicity(None, (M, I)) is M
        assert leftouterjoin_monotonicity(None, (I, I)) is I
        assert leftouterjoin_monotonicity(None, (I, M)) is U
        assert leftouterjoin_monotonicity(None, (M, A)) is U


class TestSimplificationRules:
    def test_semijoin_with_empty(self):
        registry = default_registry()
        assert simplify_expression(SemiJoin(Empty(2), S, equals(0, 2)), registry) == Empty(2)
        assert simplify_expression(SemiJoin(R, Empty(2), equals(0, 2)), registry) == Empty(2)

    def test_antisemijoin_with_empty(self):
        registry = default_registry()
        assert simplify_expression(AntiSemiJoin(Empty(2), S, equals(0, 2)), registry) == Empty(2)
        assert simplify_expression(AntiSemiJoin(R, Empty(2), equals(0, 2)), registry) == R

    def test_leftouterjoin_with_empty_left(self):
        registry = default_registry()
        assert (
            simplify_expression(LeftOuterJoin(Empty(2), S, equals(0, 2)), registry) == Empty(4)
        )

    def test_no_rule_leaves_expression_alone(self):
        registry = default_registry()
        join = LeftOuterJoin(R, S, equals(0, 2))
        assert simplify_expression(join, registry) == join
