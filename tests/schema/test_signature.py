"""Tests for signatures and relation schemas."""

import pytest

from repro.algebra.expressions import Relation
from repro.exceptions import SchemaError
from repro.schema.signature import RelationSchema, Signature


class TestRelationSchema:
    def test_basic(self):
        schema = RelationSchema("R", 3)
        assert schema.arity == 3
        assert schema.key is None
        assert not schema.has_key

    def test_key_normalized(self):
        schema = RelationSchema("R", 3, (2, 0))
        assert schema.key == (0, 2)
        assert schema.has_key

    def test_key_out_of_range(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, (2,))

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ())

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 0)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", 2)

    def test_to_expression(self):
        assert RelationSchema("R", 2).to_expression() == Relation("R", 2)


class TestSignature:
    def test_from_arities(self):
        signature = Signature.from_arities({"R": 2, "S": 3})
        assert len(signature) == 2
        assert signature.arity_of("S") == 3

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Signature([RelationSchema("R", 2), RelationSchema("R", 2)])

    def test_contains_and_getitem(self):
        signature = Signature.from_arities({"R": 2})
        assert "R" in signature
        assert signature["R"].arity == 2
        with pytest.raises(SchemaError):
            signature["missing"]

    def test_iteration_order_is_insertion_order(self):
        signature = Signature.from_arities({"B": 1, "A": 2})
        assert signature.names() == ("B", "A")

    def test_adding_and_removing(self):
        signature = Signature.from_arities({"R": 2})
        bigger = signature.adding(RelationSchema("S", 1))
        assert "S" in bigger and "S" not in signature
        smaller = bigger.removing("R")
        assert smaller.names() == ("S",)

    def test_removing_unknown_rejected(self):
        with pytest.raises(SchemaError):
            Signature.from_arities({"R": 2}).removing("Z")

    def test_union_disjoint(self):
        left = Signature.from_arities({"R": 2})
        right = Signature.from_arities({"S": 1})
        assert set(left.union(right).names()) == {"R", "S"}

    def test_union_conflicting_arity_rejected(self):
        left = Signature.from_arities({"R": 2})
        right = Signature.from_arities({"R": 3})
        with pytest.raises(SchemaError):
            left.union(right)

    def test_union_identical_shared_ok(self):
        left = Signature.from_arities({"R": 2})
        right = Signature.from_arities({"R": 2, "S": 1})
        assert len(left.union(right)) == 2

    def test_disjointness(self):
        left = Signature.from_arities({"R": 2})
        right = Signature.from_arities({"S": 1})
        assert left.is_disjoint_from(right)
        assert not left.is_disjoint_from(left)
        assert left.shared_names(left) == ("R",)

    def test_restricted_to(self):
        signature = Signature.from_arities({"R": 2, "S": 1, "T": 3})
        assert signature.restricted_to(["S", "T"]).names() == ("S", "T")

    def test_keyed_names(self):
        signature = Signature(
            [RelationSchema("R", 2, (0,)), RelationSchema("S", 2)]
        )
        assert signature.keyed_names() == ("R",)
        assert signature.key_of("R") == (0,)
        assert signature.key_of("S") is None

    def test_relation_leaf(self):
        signature = Signature.from_arities({"R": 2})
        assert signature.relation("R") == Relation("R", 2)

    def test_equality_and_hash(self):
        a = Signature.from_arities({"R": 2, "S": 1})
        b = Signature.from_arities({"S": 1, "R": 2})
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_signature(self):
        signature = Signature()
        assert len(signature) == 0
        assert signature.names() == ()
