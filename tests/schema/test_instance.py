"""Tests for database instances."""

import pytest

from repro.exceptions import SchemaError
from repro.schema.instance import Instance
from repro.schema.signature import Signature


class TestConstruction:
    def test_basic(self):
        instance = Instance({"R": {(1, 2)}})
        assert instance.relation("R") == frozenset({(1, 2)})

    def test_missing_relation_is_empty(self):
        assert Instance({}).relation("R") == frozenset()

    def test_signature_fills_missing_relations(self):
        signature = Signature.from_arities({"R": 2, "S": 1})
        instance = Instance({"R": {(1, 2)}}, signature)
        assert instance.has_relation("S")
        assert instance.relation("S") == frozenset()

    def test_mixed_width_rejected(self):
        with pytest.raises(SchemaError):
            Instance({"R": {(1, 2), (1,)}})

    def test_signature_arity_mismatch_rejected(self):
        signature = Signature.from_arities({"R": 2})
        with pytest.raises(SchemaError):
            Instance({"R": {(1,)}}, signature)

    def test_rows_are_normalized_to_tuples(self):
        instance = Instance({"R": [[1, 2], (1, 2)]})
        assert instance.relation("R") == frozenset({(1, 2)})

    def test_empty_factory(self):
        signature = Signature.from_arities({"R": 2})
        instance = Instance.empty(signature)
        assert instance.relation("R") == frozenset()


class TestOperations:
    def test_updating(self):
        instance = Instance({"R": {(1, 2)}})
        updated = instance.updating("R", {(3, 4)})
        assert updated.relation("R") == frozenset({(3, 4)})
        assert instance.relation("R") == frozenset({(1, 2)})

    def test_merged_with_disjoint(self):
        merged = Instance({"R": {(1,)}}).merged_with(Instance({"S": {(2,)}}))
        assert merged.relation("R") == frozenset({(1,)})
        assert merged.relation("S") == frozenset({(2,)})

    def test_merged_with_conflicting_contents_rejected(self):
        with pytest.raises(SchemaError):
            Instance({"R": {(1,)}}).merged_with(Instance({"R": {(2,)}}))

    def test_merged_with_identical_contents_ok(self):
        merged = Instance({"R": {(1,)}}).merged_with(Instance({"R": {(1,)}}))
        assert merged.relation("R") == frozenset({(1,)})

    def test_restricted_to(self):
        instance = Instance({"R": {(1,)}, "S": {(2,)}})
        restricted = instance.restricted_to(["R"])
        assert restricted.relation_names() == ("R",)

    def test_equality_and_hash(self):
        assert Instance({"R": {(1,)}}) == Instance({"R": {(1,)}})
        assert hash(Instance({"R": {(1,)}})) == hash(Instance({"R": {(1,)}}))
        assert Instance({"R": {(1,)}}) != Instance({"R": {(2,)}})


class TestDerived:
    def test_active_domain(self):
        instance = Instance({"R": {(1, "a")}, "S": {(2,)}})
        assert instance.active_domain() == frozenset({1, "a", 2})

    def test_total_tuples(self):
        instance = Instance({"R": {(1,), (2,)}, "S": {(3,)}})
        assert instance.total_tuples() == 3

    def test_satisfies_key_true(self):
        instance = Instance({"R": {(1, "a"), (2, "b")}})
        assert instance.satisfies_key("R", (0,))

    def test_satisfies_key_false(self):
        instance = Instance({"R": {(1, "a"), (1, "b")}})
        assert not instance.satisfies_key("R", (0,))

    def test_satisfies_key_composite(self):
        instance = Instance({"R": {(1, "a", "x"), (1, "b", "y")}})
        assert instance.satisfies_key("R", (0, 1))
