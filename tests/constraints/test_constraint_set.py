"""Tests for ConstraintSet."""

import pytest

from repro.algebra.expressions import Projection, Relation, SkolemApplication, SkolemFunction, Union
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import ConstraintError

R, S, T = Relation("R", 2), Relation("S", 2), Relation("T", 2)
C1 = ContainmentConstraint(R, S)
C2 = ContainmentConstraint(S, T)
E1 = EqualityConstraint(R, T)


class TestCollectionBehaviour:
    def test_preserves_order_and_deduplicates(self):
        constraints = ConstraintSet([C1, C2, C1])
        assert list(constraints) == [C1, C2]
        assert len(constraints) == 2

    def test_contains(self):
        assert C1 in ConstraintSet([C1])
        assert C2 not in ConstraintSet([C1])

    def test_equality_ignores_order(self):
        assert ConstraintSet([C1, C2]) == ConstraintSet([C2, C1])
        assert hash(ConstraintSet([C1, C2])) == hash(ConstraintSet([C2, C1]))

    def test_indexing(self):
        assert ConstraintSet([C1, C2])[1] == C2

    def test_rejects_non_constraints(self):
        with pytest.raises(ConstraintError):
            ConstraintSet([C1, "bogus"])

    def test_to_text_round_trips_through_parser(self):
        from repro.algebra.parser import parse_constraints

        constraints = ConstraintSet([C1, E1])
        parsed = parse_constraints(constraints.to_text())
        assert ConstraintSet(parsed) == constraints


class TestBuilding:
    def test_adding_and_removing(self):
        constraints = ConstraintSet([C1]).adding(C2)
        assert C2 in constraints
        assert C2 not in constraints.removing(C2)

    def test_replacing(self):
        constraints = ConstraintSet([C1, C2]).replacing(C1, [E1])
        assert list(constraints) == [E1, C2]

    def test_replacing_missing_raises(self):
        with pytest.raises(ConstraintError):
            ConstraintSet([C1]).replacing(C2, [E1])

    def test_union(self):
        assert len(ConstraintSet([C1]).union(ConstraintSet([C2, C1]))) == 2

    def test_map_and_filter(self):
        constraints = ConstraintSet([C1, C2])
        substituted = constraints.map(lambda c: c.substituting("S", T))
        assert ContainmentConstraint(R, T) in substituted
        filtered = constraints.filter(lambda c: c.mentions("R"))
        assert list(filtered) == [C1]

    def test_without_trivial(self):
        constraints = ConstraintSet([C1, ContainmentConstraint(R, R)])
        assert list(constraints.without_trivial()) == [C1]


class TestQueries:
    def test_relation_names(self):
        assert ConstraintSet([C1, C2]).relation_names() == frozenset({"R", "S", "T"})

    def test_constraints_mentioning(self):
        constraints = ConstraintSet([C1, C2, E1])
        assert constraints.constraints_mentioning("S") == (C1, C2)
        assert constraints.mentions("S")
        assert not constraints.mentions("Z")

    def test_operator_count(self):
        constraints = ConstraintSet(
            [ContainmentConstraint(Union(R, S), T), ContainmentConstraint(Projection(R, (0,)), Projection(T, (0,)))]
        )
        assert constraints.operator_count() == 3

    def test_contains_skolem(self):
        skolemized = ContainmentConstraint(
            SkolemApplication(R, SkolemFunction("f", (0,))), Relation("W", 3)
        )
        assert ConstraintSet([skolemized]).contains_skolem()
        assert not ConstraintSet([C1]).contains_skolem()

    def test_containments_and_equalities(self):
        constraints = ConstraintSet([C1, E1])
        assert constraints.containments() == (C1,)
        assert constraints.equalities() == (E1,)


class TestTransformations:
    def test_substituting(self):
        constraints = ConstraintSet([C1, C2]).substituting("S", Union(R, T))
        assert ContainmentConstraint(R, Union(R, T)) in constraints
        assert ContainmentConstraint(Union(R, T), T) in constraints

    def test_split_equalities_for_symbol(self):
        constraints = ConstraintSet([EqualityConstraint(S, R), E1])
        split = constraints.with_equalities_split("S")
        assert ContainmentConstraint(S, R) in split
        assert ContainmentConstraint(R, S) in split
        assert E1 in split  # does not mention S, stays an equality

    def test_split_all_equalities(self):
        constraints = ConstraintSet([EqualityConstraint(S, R), E1])
        split = constraints.with_equalities_split()
        assert len(split.equalities()) == 0
        assert len(split.containments()) == 4
