"""Tests for the dependency encodings (keys, inclusion dependencies, views)."""

import pytest

from repro.algebra.expressions import Projection, Relation
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.dependencies import (
    inclusion_dependency,
    key_constraint,
    key_constraints_for,
    view_definition,
)
from repro.constraints.satisfaction import satisfies
from repro.exceptions import ConstraintError
from repro.schema.instance import Instance
from repro.schema.signature import RelationSchema, Signature


class TestKeyConstraint:
    def test_satisfied_by_keyed_instance(self):
        constraint = key_constraint(Relation("S", 2), (0,))
        instance = Instance({"S": {(1, "a"), (2, "b")}})
        assert satisfies(instance, constraint)

    def test_violated_by_duplicate_key(self):
        constraint = key_constraint(Relation("S", 2), (0,))
        instance = Instance({"S": {(1, "a"), (1, "b")}})
        assert not satisfies(instance, constraint)

    def test_composite_key(self):
        constraint = key_constraint(Relation("S", 3), (0, 1))
        good = Instance({"S": {(1, 1, "x"), (1, 2, "y")}})
        bad = Instance({"S": {(1, 1, "x"), (1, 1, "y")}})
        assert satisfies(good, constraint)
        assert not satisfies(bad, constraint)

    def test_wider_non_key_part(self):
        constraint = key_constraint(Relation("S", 3), (0,))
        good = Instance({"S": {(1, "a", "b"), (2, "a", "c")}})
        bad = Instance({"S": {(1, "a", "b"), (1, "a", "c")}})
        assert satisfies(good, constraint)
        assert not satisfies(bad, constraint)

    def test_all_columns_key_rejected(self):
        with pytest.raises(ConstraintError):
            key_constraint(Relation("S", 2), (0, 1))

    def test_out_of_range_key_rejected(self):
        with pytest.raises(ConstraintError):
            key_constraint(Relation("S", 2), (5,))

    def test_key_constraints_for_signature(self):
        signature = Signature(
            [
                RelationSchema("A", 3, (0,)),
                RelationSchema("B", 2),
                RelationSchema("C", 2, (0, 1)),  # full key: skipped
            ]
        )
        constraints = key_constraints_for(signature)
        assert len(constraints) == 1
        assert constraints[0].relation_names() == frozenset({"A"})


class TestInclusionDependency:
    def test_build_and_check(self):
        constraint = inclusion_dependency(Relation("R", 3), [0], Relation("S", 2), [1])
        assert constraint == ContainmentConstraint(
            Projection(Relation("R", 3), (0,)), Projection(Relation("S", 2), (1,))
        )
        instance = Instance({"R": {(1, 2, 3)}, "S": {("x", 1)}})
        assert satisfies(instance, constraint)

    def test_mismatched_column_lists_rejected(self):
        with pytest.raises(ConstraintError):
            inclusion_dependency(Relation("R", 2), [0, 1], Relation("S", 2), [0])


class TestViewDefinition:
    def test_view_definition_is_equality(self):
        view = view_definition(Relation("V", 1), Projection(Relation("R", 2), (0,)))
        assert isinstance(view, EqualityConstraint)
        assert view.definition_of("V") == Projection(Relation("R", 2), (0,))
