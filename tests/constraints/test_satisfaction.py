"""Tests for constraint satisfaction checking."""

from repro.algebra.conditions import equals_const
from repro.algebra.expressions import Projection, Relation, Selection, Union
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.constraints.satisfaction import (
    check_soundness_on_instance,
    satisfies,
    satisfies_all,
    violated_constraints,
)
from repro.schema.instance import Instance

R, S = Relation("R", 2), Relation("S", 2)


class TestSatisfies:
    def test_containment_holds(self):
        instance = Instance({"R": {(1, 2)}, "S": {(1, 2), (3, 4)}})
        assert satisfies(instance, ContainmentConstraint(R, S))

    def test_containment_fails(self):
        instance = Instance({"R": {(1, 2)}, "S": set()})
        assert not satisfies(instance, ContainmentConstraint(R, S))

    def test_equality_holds(self):
        instance = Instance({"R": {(1, 2)}, "S": {(1, 2)}})
        assert satisfies(instance, EqualityConstraint(R, S))

    def test_equality_fails_when_strict_subset(self):
        instance = Instance({"R": {(1, 2)}, "S": {(1, 2), (3, 4)}})
        assert not satisfies(instance, EqualityConstraint(R, S))

    def test_complex_expression(self):
        instance = Instance({"R": {(1, 2), (5, 5)}, "S": {(5, 5)}})
        constraint = ContainmentConstraint(Selection(R, equals_const(0, 5)), S)
        assert satisfies(instance, constraint)

    def test_extra_domain_is_used(self):
        # π_0(R) ⊆ π_0(D^2) always holds; use extra domain to check plumbing.
        instance = Instance({"R": {(1, 1)}})
        constraint = ContainmentConstraint(Projection(R, (0,)), Projection(Relation("R", 2), (0,)))
        assert satisfies(instance, constraint, extra_domain=["x"])


class TestBatchChecks:
    def test_satisfies_all(self):
        instance = Instance({"R": {(1, 2)}, "S": {(1, 2)}, "T": {(1, 2), (9, 9)}})
        constraints = [
            ContainmentConstraint(R, S),
            ContainmentConstraint(Union(R, S), Relation("T", 2)),
        ]
        assert satisfies_all(instance, constraints)

    def test_violated_constraints(self):
        instance = Instance({"R": {(1, 2)}, "S": set(), "T": set()})
        constraints = [
            ContainmentConstraint(R, S),
            ContainmentConstraint(R, Relation("T", 2)),
        ]
        assert violated_constraints(instance, constraints) == constraints

    def test_empty_constraint_list(self):
        assert satisfies_all(Instance({}), [])


class TestSoundnessHelper:
    def test_vacuous_when_original_violated(self):
        instance = Instance({"R": {(1, 2)}, "S": set()})
        original = ConstraintSet([ContainmentConstraint(R, S)])
        rewritten = ConstraintSet([ContainmentConstraint(R, Relation("T", 2))])
        ok, violated = check_soundness_on_instance(instance, original, rewritten)
        assert ok and not violated

    def test_detects_unsound_rewrite(self):
        instance = Instance({"R": {(1, 2)}, "S": {(1, 2)}, "T": set()})
        original = ConstraintSet([ContainmentConstraint(R, S)])
        bogus = ConstraintSet([ContainmentConstraint(R, Relation("T", 2))])
        ok, violated = check_soundness_on_instance(instance, original, bogus)
        assert not ok and violated

    def test_accepts_sound_rewrite(self):
        instance = Instance({"R": {(1, 2)}, "S": {(1, 2)}, "T": {(1, 2)}})
        original = ConstraintSet(
            [ContainmentConstraint(R, S), ContainmentConstraint(S, Relation("T", 2))]
        )
        rewritten = ConstraintSet([ContainmentConstraint(R, Relation("T", 2))])
        ok, violated = check_soundness_on_instance(instance, original, rewritten)
        assert ok and not violated

    def test_ignores_constraints_over_missing_relations(self):
        instance = Instance({"R": {(1, 2)}, "S": {(1, 2)}})
        original = ConstraintSet([ContainmentConstraint(R, S)])
        rewritten = ConstraintSet([ContainmentConstraint(Relation("Z", 2), Relation("W", 2))])
        ok, _ = check_soundness_on_instance(instance, original, rewritten)
        assert ok
