"""Tests for containment and equality constraints."""

import pytest

from repro.algebra.conditions import equals
from repro.algebra.expressions import (
    Difference,
    Domain,
    Empty,
    Projection,
    Relation,
    Selection,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.exceptions import ArityError, ConstraintError

R, S, T = Relation("R", 2), Relation("S", 2), Relation("T", 2)


class TestConstruction:
    def test_containment(self):
        constraint = ContainmentConstraint(R, S)
        assert constraint.left == R and constraint.right == S

    def test_equality(self):
        constraint = EqualityConstraint(R, S)
        assert str(constraint) == "R/2 = S/2"

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ArityError):
            ContainmentConstraint(R, Relation("U", 1))
        with pytest.raises(ArityError):
            EqualityConstraint(Relation("U", 1), R)

    def test_non_expression_rejected(self):
        with pytest.raises(ConstraintError):
            ContainmentConstraint(R, "S")

    def test_hashable_and_equal(self):
        assert ContainmentConstraint(R, S) == ContainmentConstraint(R, S)
        assert hash(EqualityConstraint(R, S)) == hash(EqualityConstraint(R, S))
        assert ContainmentConstraint(R, S) != EqualityConstraint(R, S)


class TestSymbolQueries:
    def test_relation_names(self):
        constraint = ContainmentConstraint(Union(R, S), T)
        assert constraint.relation_names() == frozenset({"R", "S", "T"})

    def test_mentions_sides(self):
        constraint = ContainmentConstraint(Union(R, S), T)
        assert constraint.mentions("S")
        assert constraint.mentions_on_left("S")
        assert not constraint.mentions_on_right("S")
        assert constraint.mentions_on_right("T")
        assert not constraint.mentions("Z")

    def test_occurrences(self):
        constraint = ContainmentConstraint(Union(R, R), R)
        assert constraint.occurrences("R") == 3

    def test_contains_skolem(self):
        skolemized = SkolemApplication(R, SkolemFunction("f", (0,)))
        assert ContainmentConstraint(skolemized, Relation("T", 3)).contains_skolem()
        assert not ContainmentConstraint(R, S).contains_skolem()

    def test_contains_domain_and_empty(self):
        assert ContainmentConstraint(R, Domain(2)).contains_domain()
        assert ContainmentConstraint(Empty(2), S).contains_empty()

    def test_operator_count(self):
        constraint = ContainmentConstraint(Union(R, S), Projection(T, (1, 0)))
        assert constraint.operator_count() == 2

    def test_is_trivial(self):
        assert ContainmentConstraint(R, R).is_trivial()
        assert not ContainmentConstraint(R, S).is_trivial()


class TestRewriting:
    def test_substituting_containment(self):
        constraint = ContainmentConstraint(Union(R, S), S)
        rewritten = constraint.substituting("S", T)
        assert rewritten == ContainmentConstraint(Union(R, T), T)

    def test_substituting_equality(self):
        constraint = EqualityConstraint(S, Selection(R, equals(0, 1)))
        rewritten = constraint.substituting("R", T)
        assert rewritten == EqualityConstraint(S, Selection(T, equals(0, 1)))

    def test_equality_as_containments(self):
        forward, backward = EqualityConstraint(R, S).as_containments()
        assert forward == ContainmentConstraint(R, S)
        assert backward == ContainmentConstraint(S, R)

    def test_sides(self):
        assert ContainmentConstraint(R, S).sides() == (R, S)


class TestDefinitionDetection:
    def test_left_definition(self):
        constraint = EqualityConstraint(S, Difference(R, T))
        assert constraint.definition_of("S") == Difference(R, T)

    def test_right_definition(self):
        constraint = EqualityConstraint(Difference(R, T), S)
        assert constraint.definition_of("S") == Difference(R, T)

    def test_self_referential_not_a_definition(self):
        constraint = EqualityConstraint(S, Union(S, R))
        assert constraint.definition_of("S") is None

    def test_not_alone_not_a_definition(self):
        constraint = EqualityConstraint(Union(S, R), T)
        assert constraint.definition_of("S") is None

    def test_containment_is_never_a_definition(self):
        assert not ContainmentConstraint(S, R).is_identity_definition_of("S")
