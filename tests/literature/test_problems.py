"""Tests for the literature problem suite — the paper's correctness data set."""

import pytest

from repro.compose.composer import compose
from repro.compose.config import ComposerConfig
from repro.literature.problems import all_problems, problem_by_name

PROBLEMS = all_problems()


class TestSuiteShape:
    def test_at_least_22_problems(self):
        """The paper's first data set contains 22 problems; ours is a superset."""
        assert len(PROBLEMS) >= 22

    def test_names_are_unique(self):
        names = [problem.name for problem in PROBLEMS]
        assert len(names) == len(set(names))

    def test_problem_by_name(self):
        assert problem_by_name("example1_movies").name == "example1_movies"
        with pytest.raises(KeyError):
            problem_by_name("does_not_exist")

    def test_every_problem_has_source_and_description(self):
        for problem in PROBLEMS:
            assert problem.source
            assert problem.description

    def test_expected_complete_consistency(self):
        for problem in PROBLEMS:
            if problem.expected_complete:
                assert set(problem.expected_eliminable) == set(
                    problem.problem.sigma2.names()
                )


@pytest.mark.parametrize("problem", PROBLEMS, ids=lambda p: p.name)
class TestDocumentedOutcomes:
    def test_composition_matches_documented_outcome(self, problem):
        result = compose(problem.problem)
        eliminated = set(result.eliminated_symbols)
        if problem.expected_eliminable is not None:
            missing = set(problem.expected_eliminable) - eliminated
            assert not missing, f"expected to eliminate {missing}"
        unexpected = set(problem.expected_not_eliminable) & eliminated
        assert not unexpected, f"unexpectedly eliminated {unexpected}"

    def test_output_never_mentions_eliminated_symbols(self, problem):
        result = compose(problem.problem)
        assert not (set(result.eliminated_symbols) & result.constraints.relation_names())

    def test_composition_is_deterministic(self, problem):
        first = compose(problem.problem)
        second = compose(problem.problem)
        assert first.constraints == second.constraints
        assert first.eliminated_symbols == second.eliminated_symbols


class TestSpecificOutcomes:
    def test_example1_output_relates_movies_to_names_and_years(self):
        result = compose(problem_by_name("example1_movies").problem)
        names = result.constraints.relation_names()
        assert "Movies" in names and ("Names" in names or "Years" in names)

    def test_fagin_example17_keeps_only_c(self):
        result = compose(problem_by_name("fagin_example17_noncomposable").problem)
        assert result.remaining_symbols == ("C",)

    def test_transitive_closure_symbol_kept_without_crash(self):
        result = compose(problem_by_name("nash_transitive_closure").problem)
        assert result.remaining_symbols == ("S",)
        # The recursive constraint survives untouched in the output.
        assert result.constraints.mentions("S")

    def test_partial_elimination_keeps_exactly_one(self):
        result = compose(problem_by_name("partial_elimination_mixed").problem)
        assert set(result.eliminated_symbols) == {"S1"}
        assert set(result.remaining_symbols) == {"S2"}

    def test_view_unfolding_disabled_changes_outcome_for_example5(self):
        problem = problem_by_name("example5_view_unfolding").problem
        complete = compose(problem)
        crippled = compose(problem, ComposerConfig.no_view_unfolding())
        assert complete.is_complete
        assert not crippled.is_complete

    def test_right_compose_disabled_changes_outcome_for_intersection_case(self):
        # Example 8: left-normalization fails on the ∩, so only right compose
        # can eliminate S; disabling it must leave the symbol in place.
        problem = problem_by_name("example8_intersection_left").problem
        complete = compose(problem)
        crippled = compose(problem, ComposerConfig.no_right_compose())
        assert complete.is_complete
        assert not crippled.is_complete
