"""Tests for event vectors."""

import pytest

from repro.evolution.event_vector import ALL_PRIMITIVES, INCLUSION_PRIMITIVES, EventVector
from repro.exceptions import SimulatorError


class TestConstruction:
    def test_default_vector(self):
        vector = EventVector.default()
        assert vector.weight_of("AA") == 2.0
        assert vector.weight_of("DR") == pytest.approx(0.2)
        assert vector.weight_of("Hf") == 1.0

    def test_uniform(self):
        vector = EventVector.uniform(["AA", "DA"])
        assert vector.weight_of("AA") == 1.0
        assert vector.weight_of("Hf") == 0.0

    def test_unknown_primitive_rejected(self):
        with pytest.raises(SimulatorError):
            EventVector.from_mapping({"XX": 1.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(SimulatorError):
            EventVector.from_mapping({"AA": -1.0})

    def test_duplicate_rejected(self):
        with pytest.raises(SimulatorError):
            EventVector((("AA", 1.0), ("AA", 2.0)))

    def test_all_zero_rejected(self):
        with pytest.raises(SimulatorError):
            EventVector.from_mapping({"AA": 0.0})

    def test_structural_only_excludes_inclusions(self):
        vector = EventVector.structural_only()
        for name in INCLUSION_PRIMITIVES:
            assert vector.weight_of(name) == 0.0

    def test_partition_heavy_biases_partitions(self):
        vector = EventVector.partition_heavy()
        assert vector.weight_of("Vf") > vector.weight_of("AA") / 2


class TestInclusionProportion:
    def test_with_inclusion_proportion(self):
        vector = EventVector.default().with_inclusion_proportion(0.2)
        assert vector.inclusion_proportion() == pytest.approx(0.2)
        # Structural primitives keep their relative proportions.
        base = EventVector.default()
        ratio_before = base.weight_of("AA") / base.weight_of("DA")
        ratio_after = vector.weight_of("AA") / vector.weight_of("DA")
        assert ratio_after == pytest.approx(ratio_before)

    def test_zero_proportion(self):
        vector = EventVector.default().with_inclusion_proportion(0.0)
        assert vector.inclusion_proportion() == pytest.approx(0.0)

    def test_invalid_proportion_rejected(self):
        with pytest.raises(SimulatorError):
            EventVector.default().with_inclusion_proportion(1.0)

    def test_proportions_sum_to_one(self):
        vector = EventVector.default().with_inclusion_proportion(0.1)
        assert vector.total_weight() == pytest.approx(1.0)


class TestQueries:
    def test_as_dict_and_proportion(self):
        vector = EventVector.uniform(["AA", "DA"])
        assert vector.as_dict() == {"AA": 1.0, "DA": 1.0}
        assert vector.proportion_of("AA") == pytest.approx(0.5)

    def test_all_primitives_constant(self):
        assert "AR" in ALL_PRIMITIVES and "Sup" in ALL_PRIMITIVES
        assert len(ALL_PRIMITIVES) == 18
