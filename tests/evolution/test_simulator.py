"""Tests for the schema-evolution simulator."""

import pytest

from repro.evolution.config import SimulatorConfig
from repro.evolution.event_vector import EventVector
from repro.evolution.simulator import SchemaEvolutionSimulator
from repro.exceptions import SimulatorError


class TestRandomSchema:
    def test_schema_size(self):
        simulator = SchemaEvolutionSimulator(seed=1)
        schema = simulator.random_schema(12)
        assert len(schema) == 12

    def test_arities_within_bounds(self):
        config = SimulatorConfig(min_arity=3, max_arity=5)
        simulator = SchemaEvolutionSimulator(seed=1, config=config)
        schema = simulator.random_schema(20)
        assert all(3 <= r.arity <= 5 for r in schema.relations)

    def test_no_keys_without_keys_enabled(self):
        simulator = SchemaEvolutionSimulator(seed=1, config=SimulatorConfig.no_keys())
        schema = simulator.random_schema(20)
        assert all(r.key is None for r in schema.relations)

    def test_keys_generated_when_enabled(self):
        config = SimulatorConfig(keys_enabled=True, keyed_probability=1.0)
        simulator = SchemaEvolutionSimulator(seed=1, config=config)
        schema = simulator.random_schema(20)
        assert all(r.key is not None for r in schema.relations)
        assert all(len(r.key) <= 3 for r in schema.relations)

    def test_invalid_size_rejected(self):
        with pytest.raises(SimulatorError):
            SchemaEvolutionSimulator(seed=1).random_schema(0)

    def test_determinism(self):
        a = SchemaEvolutionSimulator(seed=5).random_schema(10)
        b = SchemaEvolutionSimulator(seed=5).random_schema(10)
        assert a == b

    def test_name_prefix(self):
        simulator = SchemaEvolutionSimulator(seed=1, name_prefix="X")
        schema = simulator.random_schema(3)
        assert all(r.name.startswith("X") for r in schema.relations)


class TestEditGeneration:
    def test_applicable_primitives_respect_event_vector(self):
        vector = EventVector.uniform(["AA"])
        simulator = SchemaEvolutionSimulator(seed=1, event_vector=vector)
        schema = simulator.random_schema(5)
        assert simulator.applicable_primitives(schema) == ["AA"]

    def test_choose_primitive_only_applicable(self):
        vector = EventVector.uniform(["Vf"])  # requires keys; not applicable without
        simulator = SchemaEvolutionSimulator(seed=1, event_vector=vector)
        schema = simulator.random_schema(5)
        with pytest.raises(SimulatorError):
            simulator.choose_primitive(schema)

    def test_apply_primitive_by_name(self):
        simulator = SchemaEvolutionSimulator(seed=1)
        schema = simulator.random_schema(5)
        step = simulator.apply_primitive(schema, "AA")
        assert step.primitive == "AA"

    def test_apply_inapplicable_primitive_rejected(self):
        simulator = SchemaEvolutionSimulator(seed=1, config=SimulatorConfig.no_keys())
        schema = simulator.random_schema(5)
        with pytest.raises(SimulatorError):
            simulator.apply_primitive(schema, "Vf")

    def test_edit_sequence_threads_state(self):
        simulator = SchemaEvolutionSimulator(seed=3)
        schema = simulator.random_schema(8)
        steps = simulator.edit_sequence(schema, 15)
        assert len(steps) == 15
        for previous, current in zip(steps, steps[1:]):
            assert current.before == previous.after

    def test_edit_sequence_deterministic(self):
        def run(seed):
            simulator = SchemaEvolutionSimulator(seed=seed)
            schema = simulator.random_schema(8)
            return [step.primitive for step in simulator.edit_sequence(schema, 20)]

        assert run(11) == run(11)
        assert run(11) != run(12) or True  # different seeds usually differ

    def test_constraints_only_mention_consumed_and_produced(self):
        simulator = SchemaEvolutionSimulator(seed=4)
        schema = simulator.random_schema(8)
        for step in simulator.edit_sequence(schema, 25):
            allowed = set(step.consumed_names) | set(step.produced_names)
            for constraint in step.constraints:
                assert constraint.relation_names() <= allowed
