"""Tests for the simulator data model."""

import pytest

from repro.evolution.model import EditStep, RelationNamer, SchemaState, SimulatedRelation
from repro.exceptions import SimulatorError


class TestSimulatedRelation:
    def test_basic(self):
        relation = SimulatedRelation("R1", 3)
        assert relation.arity == 3
        assert not relation.has_key
        assert relation.non_key_columns == (0, 1, 2)

    def test_key_normalized_and_checked(self):
        relation = SimulatedRelation("R1", 3, (1, 0))
        assert relation.key == (0, 1)
        assert relation.non_key_columns == (2,)
        with pytest.raises(SimulatorError):
            SimulatedRelation("R1", 2, (4,))

    def test_positive_arity_required(self):
        with pytest.raises(SimulatorError):
            SimulatedRelation("R1", 0)

    def test_to_schema(self):
        schema = SimulatedRelation("R1", 2, (0,)).to_schema()
        assert schema.name == "R1" and schema.arity == 2 and schema.key == (0,)


class TestRelationNamer:
    def test_fresh_names_are_unique(self):
        namer = RelationNamer()
        names = {namer.fresh() for _ in range(50)}
        assert len(names) == 50

    def test_prefix(self):
        assert RelationNamer(prefix="A").fresh().startswith("A")


class TestSchemaState:
    def test_names_and_lookup(self):
        state = SchemaState((SimulatedRelation("A", 2), SimulatedRelation("B", 3)))
        assert state.names() == ("A", "B")
        assert "A" in state and "Z" not in state
        assert state.get("B").arity == 3
        with pytest.raises(SimulatorError):
            state.get("Z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SimulatorError):
            SchemaState((SimulatedRelation("A", 2), SimulatedRelation("A", 3)))

    def test_signature(self):
        state = SchemaState((SimulatedRelation("A", 2, (0,)),))
        signature = state.signature()
        assert signature.arity_of("A") == 2
        assert signature.key_of("A") == (0,)

    def test_applying(self):
        a, b, c = SimulatedRelation("A", 2), SimulatedRelation("B", 3), SimulatedRelation("C", 1)
        state = SchemaState((a, b))
        new_state = state.applying([a], [c])
        assert new_state.names() == ("B", "C")

    def test_applying_unknown_consumed_rejected(self):
        state = SchemaState((SimulatedRelation("A", 2),))
        with pytest.raises(SimulatorError):
            state.applying([SimulatedRelation("Z", 2)], [])

    def test_keyed_relations(self):
        state = SchemaState(
            (SimulatedRelation("A", 2, (0,)), SimulatedRelation("B", 2))
        )
        assert [r.name for r in state.keyed_relations()] == ["A"]


class TestEditStep:
    def test_names_and_arities(self):
        a, b = SimulatedRelation("A", 2), SimulatedRelation("B", 3)
        state = SchemaState((a,))
        step = EditStep(
            primitive="AA",
            consumed=(a,),
            produced=(b,),
            constraints=(),
            before=state,
            after=state.applying([a], [b]),
        )
        assert step.consumed_names == ("A",)
        assert step.produced_names == ("B",)
        assert step.arities() == {"A": 2, "B": 3}
