"""Tests for the Figure 1 schema-evolution primitives."""

import random

import pytest

from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.satisfaction import satisfies_all
from repro.evolution.config import SimulatorConfig
from repro.evolution.model import RelationNamer, SchemaState, SimulatedRelation
from repro.evolution.primitives import PRIMITIVES, get_primitive, primitive_names
from repro.exceptions import SimulatorError
from repro.schema.instance import Instance


def make_state(keys: bool = False) -> SchemaState:
    key = (0,) if keys else None
    return SchemaState(
        (
            SimulatedRelation("R1", 3, key),
            SimulatedRelation("R2", 4, key),
        )
    )


def apply_primitive(name: str, keys: bool = False, seed: int = 1):
    config = SimulatorConfig(keys_enabled=keys)
    state = make_state(keys)
    primitive = get_primitive(name)
    assert primitive.applicable(state, config)
    return primitive.apply(state, random.Random(seed), RelationNamer(prefix="N"), config)


class TestRegistry:
    def test_all_figure1_primitives_present(self):
        expected = {
            "AR", "DR", "AA", "DA", "Df", "Db", "D",
            "Hf", "Hb", "H", "Vf", "Vb", "V", "Nf", "Nb", "N", "Sub", "Sup",
        }
        assert set(primitive_names()) == expected

    def test_unknown_primitive_rejected(self):
        with pytest.raises(SimulatorError):
            get_primitive("XYZ")


class TestStructuralShape:
    def test_ar_creates_relation_without_constraints(self):
        step = apply_primitive("AR")
        assert len(step.consumed) == 0
        assert len(step.produced) == 1
        assert step.constraints == ()
        assert step.produced[0].name in step.after

    def test_dr_drops_relation(self):
        step = apply_primitive("DR")
        assert len(step.consumed) == 1
        assert len(step.produced) == 0
        assert step.consumed[0].name not in step.after

    def test_aa_adds_a_column(self):
        step = apply_primitive("AA")
        assert step.produced[0].arity == step.consumed[0].arity + 1
        assert len(step.constraints) == 1
        assert isinstance(step.constraints[0], EqualityConstraint)

    def test_da_drops_a_column(self):
        step = apply_primitive("DA")
        assert step.produced[0].arity == step.consumed[0].arity - 1

    @pytest.mark.parametrize("name,expected", [("Df", 1), ("Db", 1), ("D", 2)])
    def test_default_variants_constraint_count(self, name, expected):
        step = apply_primitive(name)
        assert len(step.constraints) == expected
        assert step.produced[0].arity == step.consumed[0].arity + 1

    @pytest.mark.parametrize("name,expected", [("Hf", 2), ("Hb", 1), ("H", 3)])
    def test_horizontal_variants(self, name, expected):
        step = apply_primitive(name)
        assert len(step.produced) == 2
        assert len(step.constraints) == expected
        assert all(r.arity == step.consumed[0].arity for r in step.produced)

    @pytest.mark.parametrize("name", ["Vf", "Vb", "V"])
    def test_vertical_requires_keys(self, name):
        config = SimulatorConfig(keys_enabled=False)
        assert not get_primitive(name).applicable(make_state(keys=False), config)
        step = apply_primitive(name, keys=True)
        assert len(step.produced) == 2
        total_payload = sum(r.arity for r in step.produced)
        key_width = len(step.consumed[0].key)
        assert total_payload == step.consumed[0].arity + key_width

    @pytest.mark.parametrize("name", ["Nf", "Nb", "N"])
    def test_normalization_does_not_require_keys(self, name):
        step = apply_primitive(name, keys=False)
        assert len(step.produced) == 2
        # The inclusion constraint π_A(T) ⊆ π_A(S) is always present.
        assert any(isinstance(c, ContainmentConstraint) for c in step.constraints)

    @pytest.mark.parametrize("name", ["Sub", "Sup"])
    def test_inclusion_primitives(self, name):
        step = apply_primitive(name)
        assert len(step.constraints) == 1
        assert isinstance(step.constraints[0], ContainmentConstraint)

    def test_keys_enabled_adds_key_constraints(self):
        step = apply_primitive("AA", keys=True)
        # Key constraint(s) of the produced relation are included.
        assert len(step.constraints) >= 2


class TestSemantics:
    """The constraints of forward/backward variants must accept the intended migration."""

    def test_aa_constraint_semantics(self):
        step = apply_primitive("AA")
        source_name = step.consumed[0].name
        target_name = step.produced[0].name
        source_rows = {(1, 2, 3)} if step.consumed[0].arity == 3 else {(1, 2, 3, 4)}
        target_rows = {row + ("new",) for row in source_rows}
        instance = Instance({source_name: source_rows, target_name: target_rows})
        assert satisfies_all(instance, step.constraints)

    def test_hb_union_semantics(self):
        step = apply_primitive("Hb")
        source = step.consumed[0]
        s_name, t_name = step.produced[0].name, step.produced[1].name
        rows = {tuple(range(source.arity)), tuple(range(1, source.arity + 1))}
        instance = Instance(
            {source.name: rows, s_name: {list(rows)[0]}, t_name: {list(rows)[1]}}
        )
        assert satisfies_all(instance, step.constraints)

    def test_hf_selection_semantics(self):
        step = apply_primitive("Hf")
        source = step.consumed[0]
        # With an empty source, both partitions must be empty: satisfied.
        instance = Instance(
            {source.name: set(), step.produced[0].name: set(), step.produced[1].name: set()}
        )
        assert satisfies_all(instance, step.constraints)

    def test_vertical_roundtrip_semantics(self):
        step = apply_primitive("V", keys=True)
        source = step.consumed[0]
        key_width = len(source.key)
        row = tuple(range(source.arity))
        s_rel, t_rel = step.produced
        s_row = tuple(row[: s_rel.arity])
        shared = row[:key_width]
        t_row = shared + tuple(row[s_rel.arity:])
        instance = Instance(
            {source.name: {row}, s_rel.name: {s_row}, t_rel.name: {t_row}}
        )
        assert satisfies_all(instance, step.constraints)


class TestDeterminism:
    def test_same_seed_same_step(self):
        first = apply_primitive("H", seed=7)
        second = apply_primitive("H", seed=7)
        assert first.constraints == second.constraints
        assert first.produced_names == second.produced_names
