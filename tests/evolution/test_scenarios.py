"""Tests for the schema-editing and schema-reconciliation scenario drivers."""

import pytest

from repro.compose.config import ComposerConfig
from repro.evolution.config import SimulatorConfig
from repro.evolution.event_vector import EventVector
from repro.evolution.scenarios import run_editing_scenario, run_reconciliation_scenario


class TestEditingScenario:
    def test_basic_run(self):
        result = run_editing_scenario(schema_size=8, num_edits=12, seed=3)
        assert len(result.records) == 12
        assert 0.0 <= result.total_fraction_eliminated() <= 1.0
        assert result.total_duration() >= 0.0

    def test_final_constraints_do_not_mention_eliminated_symbols(self):
        result = run_editing_scenario(schema_size=8, num_edits=12, seed=3)
        mentioned = result.constraints.relation_names()
        eliminated = set()
        for record in result.records:
            eliminated.update(record.consumed_eliminated)
            eliminated.update(record.retried_eliminated)
        eliminated -= set(result.leftover_symbols)
        assert not (eliminated & mentioned)

    def test_leftovers_are_exactly_the_failed_symbols(self):
        result = run_editing_scenario(schema_size=8, num_edits=15, seed=9)
        failed = set()
        for record in result.records:
            failed.update(set(record.consumed_symbols) - set(record.consumed_eliminated))
            failed -= set(record.retried_eliminated)
        assert set(result.leftover_symbols) == failed

    def test_per_primitive_statistics(self):
        result = run_editing_scenario(schema_size=8, num_edits=20, seed=5)
        fractions = result.fraction_eliminated_by_primitive()
        assert fractions
        assert all(0.0 <= value <= 1.0 for value in fractions.values())
        times = result.time_per_edit_by_primitive()
        assert set(times) >= set(fractions)
        creators = result.fraction_eliminated_by_creator()
        assert all(0.0 <= value <= 1.0 for value in creators.values())

    def test_deterministic_for_fixed_seed(self):
        a = run_editing_scenario(schema_size=6, num_edits=10, seed=21)
        b = run_editing_scenario(schema_size=6, num_edits=10, seed=21)
        assert [r.primitive for r in a.records] == [r.primitive for r in b.records]
        assert a.constraints == b.constraints

    def test_keys_configuration_runs(self):
        result = run_editing_scenario(
            schema_size=6,
            num_edits=8,
            seed=2,
            simulator_config=SimulatorConfig.with_keys(),
        )
        assert len(result.records) == 8

    def test_disabled_unfolding_weakens_composition(self):
        strong = run_editing_scenario(schema_size=8, num_edits=25, seed=13)
        weak = run_editing_scenario(
            schema_size=8,
            num_edits=25,
            seed=13,
            composer_config=ComposerConfig.no_view_unfolding(),
        )
        assert weak.total_fraction_eliminated() <= strong.total_fraction_eliminated() + 1e-9

    def test_event_vector_respected(self):
        vector = EventVector.uniform(["AA", "DA"])
        result = run_editing_scenario(
            schema_size=6, num_edits=10, seed=4, event_vector=vector
        )
        assert {record.primitive for record in result.records} <= {"AA", "DA"}

    def test_record_fraction_property(self):
        result = run_editing_scenario(schema_size=6, num_edits=10, seed=4)
        for record in result.records:
            if record.consumed_symbols:
                expected = len(record.consumed_eliminated) / len(record.consumed_symbols)
                assert record.fraction_eliminated == pytest.approx(expected)
            else:
                assert record.fraction_eliminated == 1.0


class TestReconciliationScenario:
    def test_basic_run(self):
        record, result = run_reconciliation_scenario(schema_size=6, num_edits=8, seed=3)
        assert record.schema_size == 6
        assert record.num_edits == 8
        assert 0.0 <= record.fraction_eliminated <= 1.0
        assert record.attempted_symbols >= 6
        assert record.eliminated_symbols == len(result.eliminated_symbols)

    def test_output_signatures_disjoint_from_intermediate(self):
        _, result = run_reconciliation_scenario(schema_size=6, num_edits=8, seed=3)
        outer = set(result.sigma1.names()) | set(result.sigma3.names())
        assert not (outer & set(result.attempted_symbols))

    def test_deterministic(self):
        first, _ = run_reconciliation_scenario(schema_size=5, num_edits=6, seed=17)
        second, _ = run_reconciliation_scenario(schema_size=5, num_edits=6, seed=17)
        assert first.fraction_eliminated == second.fraction_eliminated
        assert first.attempted_symbols == second.attempted_symbols
