"""Tests for the health-routing front tier (``repro route``)."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.catalog import MappingCatalog
from repro.engine import ChainGrower
from repro.exceptions import ServiceError
from repro.literature.problems import problem_by_name
from repro.service import (
    CompositionService,
    HTTPJournalSource,
    ReplicationFollower,
    RouterHTTPServer,
    ServiceConfig,
    ServiceHTTPServer,
)
from repro.service.router import BackendState
from repro.textio.format import problem_to_text


def _wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class _Stack:
    """One backend: catalog + service + HTTP server, with optional follower."""

    def __init__(self, root, follower=None):
        self.catalog = MappingCatalog(root)
        self.follower = follower
        self.service = CompositionService(
            self.catalog, ServiceConfig(micro_batch_wait_seconds=0.0)
        )
        self.service.start()
        self.server = ServiceHTTPServer(self.service, port=0, follower=follower)
        self.server.start()
        host, port = self.server.address
        self.base = f"http://{host}:{port}"

    def stop(self):
        self.server.stop()
        self.service.stop()
        if self.follower is not None and not self.follower.promoted:
            self.follower.stop()


@pytest.fixture()
def primary(tmp_path):
    stack = _Stack(tmp_path / "primary")
    yield stack
    stack.stop()


@pytest.fixture()
def follower_stack(primary, tmp_path):
    catalog = MappingCatalog(tmp_path / "follower")
    follower = ReplicationFollower(
        catalog, HTTPJournalSource(primary.base), poll_interval_seconds=0.02
    ).start()
    stack = _Stack.__new__(_Stack)
    stack.catalog = catalog
    stack.follower = follower
    stack.service = CompositionService(
        catalog, ServiceConfig(micro_batch_wait_seconds=0.0)
    )
    stack.service.start()
    stack.server = ServiceHTTPServer(stack.service, port=0, follower=follower)
    stack.server.start()
    host, port = stack.server.address
    stack.base = f"http://{host}:{port}"
    yield stack
    stack.stop()


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode(), dict(response.headers)


def _post(url, body=b"", timeout=60):
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read().decode(), dict(response.headers)


class TestCandidateSelection:
    def _backend(self, url, healthy=True, reachable=True, role="primary"):
        state = BackendState(url)
        state.healthy = healthy
        state.reachable = reachable
        state.role = role
        return state

    def _router(self, backends):
        router = RouterHTTPServer.__new__(RouterHTTPServer)
        router.backends = backends
        import threading

        router._lock = threading.Lock()
        router._rotation = 0
        return router

    def test_reads_prefer_followers_then_primary_then_degraded(self):
        follower = self._backend("http://f", role="follower")
        primary = self._backend("http://p")
        degraded = self._backend("http://d", healthy=False)
        router = self._router([degraded, primary, follower])
        order = [b.url for b in router._read_candidates()]
        assert order == ["http://f", "http://p", "http://d"]

    def test_reads_rotate_among_followers(self):
        followers = [
            self._backend(f"http://f{n}", role="follower") for n in range(3)
        ]
        router = self._router(followers)
        first = [b.url for b in router._read_candidates()]
        second = [b.url for b in router._read_candidates()]
        assert sorted(first) == sorted(second)
        assert first != second  # the rotation moved

    def test_writes_only_go_to_primaries(self):
        follower = self._backend("http://f", role="follower")
        primary = self._backend("http://p")
        degraded_primary = self._backend("http://dp", healthy=False)
        router = self._router([follower, degraded_primary, primary])
        order = [b.url for b in router._write_candidates()]
        assert order == ["http://p", "http://dp"]

    def test_unreachable_backends_are_never_candidates(self):
        dead = self._backend("http://dead", healthy=False, reachable=False)
        router = self._router([dead])
        assert router._read_candidates() == []
        assert router._write_candidates() == []

    def test_writes_prefer_the_highest_epoch_primary(self):
        old = self._backend("http://old")
        promoted = self._backend("http://promoted")
        promoted.epoch = 2
        old.epoch = 1
        router = self._router([old, promoted])
        order = [b.url for b in router._write_candidates()]
        assert order == ["http://promoted", "http://old"]

    def test_equal_epochs_preserve_configured_order(self):
        first = self._backend("http://first")
        second = self._backend("http://second")
        router = self._router([first, second])
        order = [b.url for b in router._write_candidates()]
        assert order == ["http://first", "http://second"]

    def test_idempotency_rules(self):
        assert RouterHTTPServer._idempotent("GET", "/metrics")
        assert RouterHTTPServer._idempotent("POST", "/compose")
        assert RouterHTTPServer._idempotent("POST", "/compose?store=x")
        assert not RouterHTTPServer._idempotent("POST", "/admin/promote")

    def test_constructor_validation(self):
        with pytest.raises(ServiceError):
            RouterHTTPServer([])
        with pytest.raises(ServiceError):
            RouterHTTPServer(["http://x"], health_interval_seconds=0)
        with pytest.raises(ServiceError):
            RouterHTTPServer(["http://x"], min_consecutive_ok=0)


class TestRouting:
    def test_routes_reads_and_writes(self, primary, follower_stack):
        with RouterHTTPServer(
            [primary.base, follower_stack.base], port=0, health_interval_seconds=0.05
        ) as router:
            host, port = router.address
            base = f"http://{host}:{port}"
            # Reads go to the healthy follower first.
            status, _, headers = _get(base + "/healthz")
            assert status == 200
            assert headers["x-repro-backend"] == follower_stack.base
            # Writes (a stored composition) go to the primary.
            problem = problem_by_name("example1_movies").problem
            status, _, headers = _post(
                base + "/compose?store=routed", problem_to_text(problem).encode()
            )
            assert status == 200
            assert headers["x-repro-backend"] == primary.base
            assert "routed" in primary.catalog.names("result")
            # ... and the stored problem replicates to the follower.
            assert _wait_for(
                lambda: "routed" in follower_stack.catalog.names("result")
            )

    def test_router_status_reports_backends(self, primary):
        with RouterHTTPServer([primary.base], port=0) as router:
            host, port = router.address
            _, body, _ = _get(f"http://{host}:{port}/router/status")
            status = json.loads(body)
            (backend,) = status["backends"]
            assert backend["url"] == primary.base
            assert backend["healthy"] is True
            assert backend["role"] == "primary"
            assert status["failovers_observed"] == 0

    def test_backend_errors_are_relayed_verbatim(self, primary):
        with RouterHTTPServer([primary.base], port=0) as router:
            host, port = router.address
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://{host}:{port}/no/such/endpoint")
            assert excinfo.value.code == 404
            # An answering backend is authoritative: no retry was counted.
            assert router.request_retries == 0

    def test_dead_backend_read_retries_to_survivor(self, primary, tmp_path):
        doomed = _Stack(tmp_path / "doomed")
        with RouterHTTPServer(
            [doomed.base, primary.base], port=0, health_interval_seconds=30
        ) as router:
            doomed.stop()
            host, port = router.address
            # The health loop races the stop() above (start() runs one
            # synchronous pass and the loop thread runs another before its
            # first wait), so halt it and pin the router's belief — doomed
            # healthy, tried first.  The request itself is then what
            # discovers the death.
            router._health_stop.set()
            router._health_thread.join()
            state = next(b for b in router.backends if b.url == doomed.base)
            state.healthy = True
            state.reachable = True
            router.backends.sort(key=lambda b: b.url != doomed.base)
            status, _, headers = _get(f"http://{host}:{port}/healthz")
            assert status == 200
            assert headers["x-repro-backend"] == primary.base
            assert headers["x-repro-retries"] == "1"
            assert router.request_retries == 1
            # The failed backend was marked down immediately.
            state = next(b for b in router.backends if b.url == doomed.base)
            assert state.reachable is False

    def test_no_backend_means_503_with_retry_after(self, tmp_path):
        stack = _Stack(tmp_path / "gone")
        base = stack.base
        stack.stop()
        with RouterHTTPServer([base], port=0, health_interval_seconds=30) as router:
            host, port = router.address
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://{host}:{port}/healthz")
            assert excinfo.value.code == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            assert router.requests_failed == 1

    def test_non_idempotent_post_is_not_retried(self, primary, tmp_path):
        doomed = _Stack(tmp_path / "doomed")
        with RouterHTTPServer(
            [doomed.base, primary.base], port=0, health_interval_seconds=30
        ) as router:
            doomed.stop()
            # Halt the health loop and pin the router's belief, as in
            # test_dead_backend_read_retries_to_survivor above.
            router._health_stop.set()
            router._health_thread.join()
            state = next(b for b in router.backends if b.url == doomed.base)
            state.healthy = True
            state.reachable = True
            router.backends.sort(key=lambda b: b.url != doomed.base)
            host, port = router.address
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"http://{host}:{port}/admin/promote")
            assert excinfo.value.code == 503
            assert router.request_retries == 0


class TestFlapDamping:
    def test_recovering_backend_needs_consecutive_ok_polls(self, primary):
        with RouterHTTPServer(
            [primary.base], port=0, health_interval_seconds=30
        ) as router:
            # Halt the health loop so the polls below are the only ones.
            router._health_stop.set()
            router._health_thread.join()
            (backend,) = router.backends
            # Pretend the backend just came back from an unreachable streak.
            backend.healthy = False
            backend.consecutive_failures = 3
            backend.consecutive_ok = 0
            router.check_backend(backend)
            assert backend.consecutive_ok == 1
            assert backend.healthy is False  # one OK poll is not enough
            router.check_backend(backend)
            assert backend.consecutive_ok == 2
            assert backend.healthy is True
            assert backend.consecutive_failures == 0
            assert backend.last_poll_at is not None

    def test_cold_start_backend_is_healthy_on_first_poll(self, primary):
        with RouterHTTPServer(
            [primary.base], port=0, health_interval_seconds=30, min_consecutive_ok=3
        ) as router:
            # start() runs a synchronous check_all: never-failed backends
            # enter rotation on their very first OK poll.
            (backend,) = router.backends
            assert backend.healthy is True
            assert backend.consecutive_ok >= 1

    def test_status_exposes_damping_fields(self, primary):
        with RouterHTTPServer([primary.base], port=0) as router:
            host, port = router.address
            _, body, _ = _get(f"http://{host}:{port}/router/status")
            (backend,) = json.loads(body)["backends"]
            assert backend["consecutive_ok"] >= 1
            assert backend["last_poll_at"] is not None
            assert backend["epoch"] == 0


class TestFailover:
    def test_promotion_is_observed_and_writes_flow(self, primary, follower_stack):
        with RouterHTTPServer(
            [primary.base, follower_stack.base], port=0, health_interval_seconds=0.05
        ) as router:
            host, port = router.address
            base = f"http://{host}:{port}"
            assert _wait_for(
                lambda: any(b.role == "follower" for b in router.backends)
            )
            # The primary dies; the operator promotes the follower directly.
            primary.stop()
            _post(follower_stack.base + "/admin/promote")
            assert _wait_for(
                lambda: any(
                    b.role == "primary" and b.healthy and b.url == follower_stack.base
                    for b in router.backends
                )
            )
            assert router.failovers >= 1
            # Writes flow again — through the promoted replica.
            problem = problem_by_name("example1_movies").problem
            status, _, headers = _post(
                base + "/compose?store=after-failover",
                problem_to_text(problem).encode(),
            )
            assert status == 200
            assert headers["x-repro-backend"] == follower_stack.base
            assert "after-failover" in follower_stack.catalog.names("result")
            _, body, _ = _get(base + "/router/status")
            assert json.loads(body)["failovers_observed"] >= 1


class TestTracing:
    def test_trace_id_survives_idempotent_retry(self, primary, tmp_path):
        """A write retried onto the second backend keeps its trace id.

        The router starts the trace at ingress; each forwarding attempt is
        its own span carrying the same trace id in the outbound headers, so
        the attempt that dies and the attempt that succeeds — and the
        backend's own spans — all land in one tree.
        """
        from repro import obs

        doomed = _Stack(tmp_path / "doomed")
        with RouterHTTPServer(
            [doomed.base, primary.base], port=0, health_interval_seconds=30
        ) as router:
            doomed.stop()
            # Halt the health loop and pin the router's belief, as in
            # test_dead_backend_read_retries_to_survivor above.
            router._health_stop.set()
            router._health_thread.join()
            state = next(b for b in router.backends if b.url == doomed.base)
            state.healthy = True
            state.reachable = True
            router.backends.sort(key=lambda b: b.url != doomed.base)
            host, port = router.address
            problem = problem_by_name("example1_movies").problem
            status, _, headers = _post(
                f"http://{host}:{port}/compose", problem_to_text(problem).encode()
            )
            assert status == 200
            assert headers["x-repro-retries"] == "1"
            trace_id = headers[obs.TRACE_ID_HEADER]
            assert trace_id
            # Router and backend run in this process, so the process-global
            # ring holds both sides of the story.
            records = obs.recorder().spans(trace_id)
            attempts = [r for r in records if r["name"] == "router.attempt"]
            assert len(attempts) == 2  # the death and the survivor
            assert len({a["span_id"] for a in attempts}) == 2
            assert {a["attrs"]["backend"] for a in attempts} == {
                doomed.base,
                primary.base,
            }
            dead = next(a for a in attempts if a["attrs"]["backend"] == doomed.base)
            assert dead["attrs"].get("unreachable") is True
            # The surviving backend's ingress span joined the router's trace,
            # parented on the attempt that reached it.
            ingress = [r for r in records if r["name"] == "http.request"]
            assert ingress, "backend recorded no http.request span in the trace"
            survivor = next(
                a for a in attempts if a["attrs"]["backend"] == primary.base
            )
            assert any(r["parent_id"] == survivor["span_id"] for r in ingress)

    def test_poll_loop_failure_bumps_the_status_counter(self, primary):
        with RouterHTTPServer(
            [primary.base], port=0, health_interval_seconds=0.01
        ) as router:
            # Patch the started instance: start()'s own synchronous pass has
            # already run, so only the background loop sees the explosion.
            def exploding_check_all():
                raise RuntimeError("probe exploded")

            router.check_all = exploding_check_all
            host, port = router.address
            assert _wait_for(lambda: router.poll_failures >= 1)
            _, body, _ = _get(f"http://{host}:{port}/router/status")
            assert json.loads(body)["poll_failures"] >= 1
