"""Metrics-layer tests: snapshot completeness and Prometheus exposition.

The snapshot test is deliberately reflective: every public scalar counter on
``ServiceMetrics`` is bumped to a unique sentinel, and the flattened snapshot
must contain every sentinel — so adding a counter without exposing it in
``snapshot()`` fails here instead of silently vanishing from ``/metrics``.
"""

import math

import pytest

from repro.service.metrics import DEFAULT_BUCKETS, LatencyHistogram, ServiceMetrics


def _flatten(value, out=None):
    """All scalar leaves of a nested dict, whatever their key paths."""
    if out is None:
        out = []
    if isinstance(value, dict):
        for child in value.values():
            _flatten(child, out)
    elif isinstance(value, (int, float)):
        out.append(value)
    return out


class TestLatencyHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        hist = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):  # one per bucket + one to +Inf
            hist.observe(value)
        assert hist.cumulative() == [(0.01, 1), (0.1, 2), (1.0, 3)]
        assert hist.count == 4
        assert hist.total == pytest.approx(5.555)

    def test_negative_observations_clamp_to_zero(self):
        hist = LatencyHistogram()
        hist.observe(-1.0)
        assert hist.count == 1
        assert hist.total == 0.0
        assert hist.cumulative()[0][1] == 1  # landed in the smallest bucket

    def test_snapshot_shape(self):
        hist = LatencyHistogram(bounds=(0.5,))
        hist.observe(0.25)
        snap = hist.snapshot()
        assert snap == {
            "count": 1,
            "sum": 0.25,
            "mean": 0.25,
            "buckets": {"0.5": 1},
        }


class TestSnapshotCompleteness:
    def test_every_counter_appears_in_the_snapshot(self):
        metrics = ServiceMetrics()
        sentinels = {}
        counters = [
            name
            for name, value in vars(metrics).items()
            if not name.startswith("_")
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        ]
        assert counters, "reflection found no counters — the probe is broken"
        for index, name in enumerate(counters):
            sentinel = 100003 + 7 * index  # unique, ratio-collision-proof
            sentinels[name] = sentinel
            setattr(metrics, name, sentinel)
        leaves = set(_flatten(metrics.snapshot()))
        missing = [
            name for name, sentinel in sentinels.items() if sentinel not in leaves
        ]
        assert not missing, f"counters absent from snapshot(): {missing}"

    def test_snapshot_has_tracing_and_histogram_sections(self):
        metrics = ServiceMetrics()
        metrics.record_slow_request()
        metrics.observe("journal_fsync_seconds", 0.002)
        snap = metrics.snapshot()
        assert snap["tracing"]["slow_requests"] == 1
        assert set(snap["histograms"]) == {
            "election_seconds",
            "execution_seconds",
            "journal_fsync_seconds",
            "queue_seconds",
            "replication_lag_seconds",
            "shard_lock_seconds",
        }
        assert snap["histograms"]["journal_fsync_seconds"]["count"] == 1

    def test_unknown_histogram_names_are_dropped_not_raised(self):
        metrics = ServiceMetrics()
        metrics.observe("no_such_histogram", 1.0)  # must not raise
        assert all(h.count == 0 for h in metrics.histograms.values())

    def test_record_completed_feeds_the_latency_histograms(self):
        metrics = ServiceMetrics()
        metrics.record_completed("succeeded", queue_seconds=0.002, execution_seconds=0.2)
        assert metrics.histograms["queue_seconds"].count == 1
        assert metrics.histograms["execution_seconds"].count == 1


def _parse_prometheus(text):
    """A minimal exposition-format parser: types + samples.

    Returns ``(types, samples)`` where samples maps
    ``name -> {labels_tuple: value}`` (``()`` for unlabeled samples).
    """
    types = {}
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line}"
        metric_part, value_part = line.rsplit(" ", 1)
        if "{" in metric_part:
            name, _, label_part = metric_part.partition("{")
            assert label_part.endswith("}")
            labels = []
            for pair in label_part[:-1].split(","):
                key, _, raw = pair.partition("=")
                assert raw.startswith('"') and raw.endswith('"'), line
                labels.append((key, raw[1:-1]))
            key = tuple(labels)
        else:
            name, key = metric_part, ()
        value = float(value_part)
        assert math.isfinite(value), line
        samples.setdefault(name, {})[key] = value
    return types, samples


class TestPrometheusExposition:
    def test_round_trips_through_a_minimal_parser(self):
        metrics = ServiceMetrics()
        metrics.record_submitted()
        metrics.record_completed("succeeded", queue_seconds=0.003, execution_seconds=0.04)
        metrics.observe("journal_fsync_seconds", 0.007)
        metrics.record_batch(4, "thread", {"hits": 3, "misses": 1})
        text = metrics.render_prometheus(pending=2, in_flight=1)
        types, samples = _parse_prometheus(text)

        assert types["repro_requests_completed"] == "gauge"
        assert samples["repro_requests_completed"][()] == 1.0
        assert samples["repro_requests_pending"][()] == 2.0
        # Dict tallies render as labeled samples.
        assert samples["repro_batching_backends"][(("key", "thread"),)] == 1.0

        # The acceptance bar: histogram buckets for queue, execution, fsync.
        for stem in (
            "repro_queue_seconds",
            "repro_execution_seconds",
            "repro_journal_fsync_seconds",
        ):
            assert types[stem] == "histogram"
            buckets = samples[f"{stem}_bucket"]
            bounds = [dict(k)["le"] for k in buckets]
            assert "+Inf" in bounds
            assert len(bounds) == len(DEFAULT_BUCKETS) + 1
            # Cumulative counts are monotone in bound order.
            ordered = sorted(
                (float("inf") if b == "+Inf" else float(b) for b in bounds)
            )
            counts = [
                buckets[(("le", "+Inf" if math.isinf(b) else f"{b:g}"),)]
                for b in ordered
            ]
            assert counts == sorted(counts)
            # _count agrees with the +Inf bucket.
            assert samples[f"{stem}_count"][()] == buckets[(("le", "+Inf"),)]
            assert samples[f"{stem}_sum"][()] >= 0.0

        assert samples["repro_journal_fsync_seconds_count"][()] == 1.0

    def test_label_values_are_escaped(self):
        metrics = ServiceMetrics()
        metrics.record_batch_failure('Error"with\\quotes', items=1)
        text = metrics.render_prometheus()
        assert '\\"with\\\\quotes' in text
        _parse_prometheus(text)  # still parses
