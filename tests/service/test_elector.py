"""Tests for lease-based leader election (``repro serve --election``)."""

import time

import pytest

from repro.catalog import MappingCatalog
from repro.catalog.leases import LeaseTable
from repro.engine import ChainGrower
from repro.exceptions import ServiceError, StaleEpochError
from repro.service import (
    CompositionService,
    HTTPJournalSource,
    LeaderElector,
    ReplicationFollower,
    ServiceConfig,
    ServiceHTTPServer,
)
from repro.service.election import LEADER_LEASE_KEY
from repro.service.replica import LocalJournalSource


def _wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _mappings(count, seed=9):
    return list(ChainGrower(seed=seed, schema_size=4).grow_many(count))


class TestValidation:
    def test_timeouts_must_be_positive(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "cat")
        with pytest.raises(ServiceError):
            LeaderElector(catalog, election_timeout_seconds=0)
        with pytest.raises(ServiceError):
            LeaderElector(catalog, poll_interval_seconds=-1)

    def test_defaults_derive_from_election_timeout(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "cat")
        elector = LeaderElector(catalog, election_timeout_seconds=8.0)
        assert elector.poll_interval_seconds == 2.0
        assert elector.leases.directory == catalog.root / "election"
        assert elector.is_leader  # no follower: this process is the primary


class TestLeaderMode:
    """Tick-level tests: drive the loop body directly, no thread."""

    def test_leader_acquires_then_renews_the_lease(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "cat")
        elector = LeaderElector(catalog, election_timeout_seconds=1.0)
        elector._leader_tick()
        assert LEADER_LEASE_KEY in elector.leases.held()
        elector._leader_tick()
        assert elector.renewals == 1
        assert elector.renew_failures == 0
        assert elector.status()["role"] == "leader"
        elector.leases.release_all()

    def test_leader_deposed_when_lease_is_taken_over(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "cat")
        elector = LeaderElector(catalog, election_timeout_seconds=1.0)
        elector._leader_tick()  # acquire
        # A usurper whose clock says our lease already expired (the
        # real-world shape: we SIGSTOPped past the TTL) takes the key over.
        usurper = LeaseTable(
            elector.leases.directory,
            owner="usurper",
            ttl_seconds=30,
            clock=lambda: time.time() + 3600,
        )
        assert usurper.acquire(LEADER_LEASE_KEY) is not None
        elector._leader_tick()  # renew comes back False
        assert elector.renew_failures == 1
        assert elector.deposed
        assert not elector.is_leader
        assert elector.status()["role"] == "deposed"
        # A deposed leader never tries to re-acquire.
        elector._leader_tick()
        assert LEADER_LEASE_KEY not in elector.leases.held()


class TestCandidateMode:
    def _replicated_pair(self, tmp_path):
        primary = MappingCatalog(tmp_path / "primary")
        for index, mapping in enumerate(_mappings(3)):
            primary.put_mapping(f"map-{index}", mapping)
        replica = MappingCatalog(tmp_path / "replica")
        follower = ReplicationFollower(
            replica, LocalJournalSource(primary.root / "journal")
        )
        follower.catch_up()
        return primary, replica, follower

    def test_silent_primary_triggers_promotion_and_fencing(self, tmp_path):
        primary, replica, follower = self._replicated_pair(tmp_path)
        elector = LeaderElector(
            replica,
            follower=follower,
            election_dir=tmp_path / "election",
            source_root=primary.root,
            election_timeout_seconds=0.2,
        )
        assert not elector.is_leader
        # The primary has been silent longer than the election timeout
        # (a local-root follower judges liveness by its own poll outcomes).
        follower._source_reachable = False
        elector._last_alive_monotonic = time.monotonic() - 10
        elector._candidate_tick()
        assert elector.elections_won == 1
        assert elector.is_leader
        assert follower.promoted
        assert elector.promotion_report["promoted"] is True
        # Promotion minted a fencing epoch and tombstoned the old root.
        assert replica.epoch == 1
        assert elector.fenced_source_epoch == 1
        with pytest.raises(StaleEpochError):
            primary.put_mapping("zombie", _mappings(1, seed=77)[0])

    def test_losing_the_race_is_not_an_error(self, tmp_path):
        primary, replica, follower = self._replicated_pair(tmp_path)
        rival = LeaseTable(tmp_path / "election", owner="rival", ttl_seconds=30)
        rival.acquire(LEADER_LEASE_KEY)
        elector = LeaderElector(
            replica,
            follower=follower,
            election_dir=tmp_path / "election",
            election_timeout_seconds=0.2,
        )
        # An unexpired peer lease counts as a live leader: no election.
        elector._last_alive_monotonic = time.monotonic() - 10
        elector._candidate_tick()
        assert elector.elections_started == 0
        assert not elector.is_leader
        # Forced into the race anyway, the loser backs off and resets its
        # silence clock instead of erroring.
        elector._run_election()
        assert elector.elections_lost == 1
        assert not elector.is_leader
        assert not follower.promoted
        assert elector.status()["primary_silence_seconds"] < 0.2

    def test_manual_promote_is_adopted(self, tmp_path):
        primary, replica, follower = self._replicated_pair(tmp_path)
        follower.promote()  # the operator beat the elector to it
        elector = LeaderElector(
            replica,
            follower=follower,
            election_dir=tmp_path / "election",
            election_timeout_seconds=0.2,
        )
        elector._candidate_tick()
        assert elector.is_leader
        assert elector.elections_started == 0  # adopted, not raced
        assert replica.epoch >= 1


class TestUnattendedFailoverInProcess:
    """The whole loop, threads and HTTP included, inside one process."""

    def test_follower_self_promotes_when_the_primary_dies(self, tmp_path):
        primary_catalog = MappingCatalog(tmp_path / "primary")
        primary_service = CompositionService(
            primary_catalog, ServiceConfig(micro_batch_wait_seconds=0.0)
        )
        primary_service.start()
        primary_server = ServiceHTTPServer(primary_service, port=0)
        primary_server.start()
        host, port = primary_server.address
        primary_base = f"http://{host}:{port}"

        (mapping,) = _mappings(1)
        primary_catalog.put_mapping("durable", mapping)

        replica_catalog = MappingCatalog(tmp_path / "replica")
        follower = ReplicationFollower(
            replica_catalog,
            HTTPJournalSource(primary_base),
            poll_interval_seconds=0.05,
        ).start()
        elector = LeaderElector(
            replica_catalog,
            follower=follower,
            election_dir=tmp_path / "election",
            source_root=primary_catalog.root,
            primary_url=primary_base,
            election_timeout_seconds=0.4,
            health_timeout_seconds=0.5,
        ).start()
        replica_service = CompositionService(
            replica_catalog, ServiceConfig(micro_batch_wait_seconds=0.0)
        )
        replica_service.start()
        replica_server = ServiceHTTPServer(
            replica_service, port=0, follower=follower, elector=elector
        )
        replica_server.start()
        try:
            assert _wait_for(lambda: "durable" in replica_catalog.names("mapping"))
            assert not elector.is_leader  # live primary: still a candidate

            # The primary dies without warning and nobody calls
            # /admin/promote: the elector must win on its own.
            primary_server.stop()
            primary_service.stop()
            assert _wait_for(lambda: elector.is_leader)
            assert follower.promoted
            assert replica_catalog.epoch >= 1
            assert (
                replica_catalog.get_mapping("durable").fingerprint()
                == mapping.fingerprint()
            )
            # The promoted node now answers as a healthy primary with the
            # new epoch, so a router would route writes to it.
            health = replica_service.health()
            assert health["status"] == "ok"
            assert elector.status()["role"] == "leader"
            # ... and the fenced ex-primary cannot accept zombie writes.
            with pytest.raises(StaleEpochError):
                primary_catalog.put_mapping("zombie", _mappings(1, seed=5)[0])
        finally:
            replica_server.stop()
            elector.stop()
            if not follower.promoted:
                follower.stop()
            replica_service.stop()
