"""Tests for catalog replication: journal sources, followers, and promotion."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.catalog import MappingCatalog
from repro.engine import ChainGrower
from repro.exceptions import ReplicationError
from repro.service import (
    CompositionService,
    HTTPJournalSource,
    LocalJournalSource,
    ReplicationFollower,
    ServiceConfig,
    ServiceHTTPServer,
    open_source,
)
from repro.service.replica import JournalSource


def _wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture()
def mappings():
    return tuple(ChainGrower(seed=7, schema_size=4).grow_many(6))


@pytest.fixture()
def primary(tmp_path):
    return MappingCatalog(tmp_path / "primary")


@pytest.fixture()
def replica_catalog(tmp_path):
    return MappingCatalog(tmp_path / "replica")


@pytest.fixture()
def primary_server(primary):
    service = CompositionService(primary, ServiceConfig(micro_batch_wait_seconds=0.0))
    service.start()
    server = ServiceHTTPServer(service, port=0)
    server.start()
    host, port = server.address
    yield primary, f"http://{host}:{port}"
    server.stop()
    service.stop()


def _assert_mirrored(primary, replica, kinds=("mapping", "chain")):
    for kind in kinds:
        assert replica.names(kind) == primary.names(kind)
        for name in primary.names(kind):
            ours = [e.fingerprint for e in replica.versions(kind, name)]
            theirs = [e.fingerprint for e in primary.versions(kind, name)]
            assert ours == theirs


class TestSources:
    def test_open_source_selects_by_scheme(self, tmp_path):
        root = tmp_path / "cat"
        MappingCatalog(root)
        assert isinstance(open_source(root), LocalJournalSource)
        assert isinstance(open_source(f"file://{root}"), LocalJournalSource)
        assert isinstance(open_source("http://127.0.0.1:9"), HTTPJournalSource)
        assert isinstance(open_source("https://example.test"), HTTPJournalSource)

    def test_open_source_rejects_missing_root_and_odd_schemes(self, tmp_path):
        with pytest.raises(ReplicationError):
            open_source(tmp_path / "no-such-root")
        with pytest.raises(ReplicationError):
            open_source("ftp://example.test")

    def test_local_source_reads_live_journal(self, primary, mappings):
        primary.put_mapping("m", mappings[0])
        source = LocalJournalSource(primary.root)
        shard = primary._shard_id("mapping", "m")
        entries = source.read_since(shard, 0)
        assert [entry["op"] for entry in entries] == ["put"]
        assert source.last_seqs()[shard] == 1

    def test_http_source_round_trip(self, primary_server, mappings):
        primary, base = primary_server
        primary.put_mapping("m", mappings[0])
        source = HTTPJournalSource(base)
        shard = primary._shard_id("mapping", "m")
        entries = source.read_since(shard, 0)
        assert [entry["name"] for entry in entries] == ["m"]
        assert source.read_since(shard, since=1) == []
        assert source.last_seqs()[shard] == 1


class TestFollower:
    def test_catch_up_mirrors_local_source(self, primary, replica_catalog, mappings):
        for index, mapping in enumerate(mappings):
            primary.put_mapping(f"m-{index % 3}", mapping)
        primary.put_chain("chain", mappings[:3])
        follower = ReplicationFollower(replica_catalog, LocalJournalSource(primary.root))
        applied = follower.catch_up()
        assert applied > 0
        _assert_mirrored(primary, replica_catalog)
        assert follower.lag() == 0
        assert follower.verify_failures == 0
        # Nothing new: another pass applies zero entries.
        assert follower.catch_up() == 0

    def test_background_tail_follows_new_writes(self, primary, replica_catalog, mappings):
        with ReplicationFollower(
            replica_catalog, LocalJournalSource(primary.root), poll_interval_seconds=0.02
        ) as follower:
            assert follower.is_running
            primary.put_mapping("live", mappings[0])
            assert _wait_for(lambda: replica_catalog.names("mapping") == ("live",))
        assert not follower.is_running
        assert replica_catalog.get_mapping("live") == mappings[0]

    def test_restart_resumes_from_own_journal(self, primary, replica_catalog, mappings):
        primary.put_mapping("m", mappings[0])
        source = LocalJournalSource(primary.root)
        ReplicationFollower(replica_catalog, source).catch_up()
        primary.put_mapping("m", mappings[1])
        # A brand-new follower over the same catalog resumes from the cursor
        # persisted in its own journal — it does not re-apply entry 1.
        fresh = ReplicationFollower(replica_catalog, source)
        assert fresh.catch_up() == 1
        assert fresh.entries_skipped == 0
        _assert_mirrored(primary, replica_catalog, kinds=("mapping",))

    def test_unreachable_source_counts_not_crashes(self, replica_catalog, tmp_path):
        source = HTTPJournalSource("http://127.0.0.1:1", timeout_seconds=0.2)
        follower = ReplicationFollower(
            replica_catalog, source, poll_interval_seconds=0.02
        )
        with pytest.raises(ReplicationError):
            follower.catch_up()
        follower.start()
        assert _wait_for(lambda: follower.poll_failures > 0)
        follower.stop()
        status = follower.status()
        assert status["source_reachable"] is False
        assert status["lag_entries"] is None

    def test_verification_failure_is_counted_and_raised(
        self, primary, replica_catalog, mappings
    ):
        primary.put_mapping("m", mappings[0])
        shard = primary._shard_id("mapping", "m")
        (entry,) = primary.journal.read_since(shard)
        corrupted = dict(entry)
        corrupted["record"] = dict(entry["record"], fingerprint="0" * 32)
        follower = ReplicationFollower(replica_catalog, LocalJournalSource(primary.root))
        with pytest.raises(ReplicationError):
            follower._apply(shard, corrupted)
        assert follower.verify_failures == 1

    def test_parameters_validated(self, replica_catalog, primary):
        source = LocalJournalSource(primary.root)
        with pytest.raises(ReplicationError):
            ReplicationFollower(replica_catalog, source, poll_interval_seconds=0)
        with pytest.raises(ReplicationError):
            ReplicationFollower(replica_catalog, source, batch_limit=0)

    def test_batched_catch_up_pages_through_backlog(
        self, primary, replica_catalog, mappings
    ):
        for index, mapping in enumerate(mappings):
            primary.put_mapping("hot", mapping)  # one name: one shard backlog
        follower = ReplicationFollower(
            replica_catalog, LocalJournalSource(primary.root), batch_limit=2
        )
        assert follower.catch_up() == len(mappings)
        _assert_mirrored(primary, replica_catalog, kinds=("mapping",))


class TestPromotion:
    def test_promote_stops_tailing_and_reports(self, primary, replica_catalog, mappings):
        primary.put_mapping("m", mappings[0])
        follower = ReplicationFollower(
            replica_catalog, LocalJournalSource(primary.root), poll_interval_seconds=0.02
        ).start()
        assert _wait_for(lambda: follower.lag() == 0)
        report = follower.promote()
        assert report["promoted"] is True
        assert report["final_catch_up_error"] is None
        assert not follower.is_running
        assert follower.promoted
        assert follower.status()["role"] == "primary"
        with pytest.raises(ReplicationError):
            follower.start()

    def test_promote_tolerates_dead_source(self, replica_catalog):
        source = HTTPJournalSource("http://127.0.0.1:1", timeout_seconds=0.2)
        follower = ReplicationFollower(replica_catalog, source)
        report = follower.promote()
        assert report["promoted"] is True
        assert report["final_catch_up_error"] is not None

    def test_promoted_catalog_continues_sequence_space(
        self, primary, replica_catalog, mappings
    ):
        primary.put_mapping("m", mappings[0])
        follower = ReplicationFollower(replica_catalog, LocalJournalSource(primary.root))
        follower.catch_up()
        follower.promote()
        shard = replica_catalog._shard_id("mapping", "m")
        before = replica_catalog.journal.last_seq(shard)
        replica_catalog.put_mapping("m", mappings[1])
        assert replica_catalog.journal.last_seq(shard) == before + 1
        # A second-generation follower can tail the promoted root in turn.
        grandchild = MappingCatalog(replica_catalog.root.parent / "grandchild")
        second = ReplicationFollower(grandchild, LocalJournalSource(replica_catalog.root))
        second.catch_up()
        _assert_mirrored(replica_catalog, grandchild, kinds=("mapping",))


class TestFollowerHTTP:
    @pytest.fixture()
    def replicated_stack(self, primary_server, tmp_path):
        primary, primary_base = primary_server
        catalog = MappingCatalog(tmp_path / "follower-cat")
        follower = ReplicationFollower(
            catalog, HTTPJournalSource(primary_base), poll_interval_seconds=0.02
        ).start()
        service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
        service.start()
        server = ServiceHTTPServer(service, port=0, follower=follower)
        server.start()
        host, port = server.address
        yield primary, primary_base, catalog, follower, f"http://{host}:{port}"
        server.stop()
        service.stop()
        if not follower.promoted:
            follower.stop()

    def _get_json(self, url):
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read().decode())

    def test_follower_replicates_over_http(self, replicated_stack, mappings):
        primary, _, catalog, follower, _ = replicated_stack
        primary.put_mapping("m", mappings[0])
        assert _wait_for(lambda: catalog.names("mapping") == ("m",))
        assert catalog.get_mapping("m") == mappings[0]
        assert follower.entries_applied >= 1

    def test_roles_and_replication_in_health_and_metrics(self, replicated_stack):
        _, primary_base, _, _, follower_base = replicated_stack
        _, health = self._get_json(primary_base + "/healthz")
        assert health["role"] == "primary"
        assert "replication" not in health
        _, health = self._get_json(follower_base + "/healthz")
        assert health["role"] == "follower"
        assert health["replication"]["source_reachable"] is True
        _, metrics = self._get_json(follower_base + "/metrics")
        assert metrics["role"] == "follower"
        assert metrics["replication"]["verify_failures"] == 0

    def test_follower_rejects_store_writes(self, replicated_stack):
        from repro.literature.problems import problem_by_name
        from repro.textio.format import problem_to_text

        _, _, _, _, follower_base = replicated_stack
        problem = problem_by_name("example1_movies").problem
        request = urllib.request.Request(
            follower_base + "/compose?store=x",
            data=problem_to_text(problem).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 409

    def test_promote_endpoint(self, replicated_stack):
        _, _, _, follower, follower_base = replicated_stack
        request = urllib.request.Request(follower_base + "/admin/promote", method="POST")
        with urllib.request.urlopen(request, timeout=30) as response:
            report = json.loads(response.read().decode())
        assert report["promoted"] is True
        assert follower.promoted
        _, health = self._get_json(follower_base + "/healthz")
        assert health["role"] == "primary"
        # A second promote is an idempotent acknowledgement.
        with urllib.request.urlopen(request, timeout=30) as response:
            again = json.loads(response.read().decode())
        assert again == {"promoted": True, "already": True}

    def test_promote_on_non_follower_is_409(self, primary_server):
        _, base = primary_server
        request = urllib.request.Request(base + "/admin/promote", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 409

    def test_journal_endpoint_shapes(self, primary_server, mappings):
        primary, base = primary_server
        primary.put_mapping("m", mappings[0])
        shard = primary._shard_id("mapping", "m")
        _, payload = self._get_json(f"{base}/journal/{shard}?since=0")
        assert payload["shard"] == shard
        assert payload["last_seq"] == 1
        assert [entry["op"] for entry in payload["entries"]] == ["put"]
        _, lag_only = self._get_json(f"{base}/journal/{shard}?since=0&limit=0")
        assert lag_only["entries"] == []
        assert lag_only["last_seq"] == 1
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/journal/999", timeout=30)
        assert excinfo.value.code in (400, 404)


class TestSourceABC:
    def test_abstract_methods_raise(self):
        source = JournalSource()
        with pytest.raises(NotImplementedError):
            source.read_since(0, 0)
        with pytest.raises(NotImplementedError):
            source.last_seqs()
