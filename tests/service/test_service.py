"""Tests for the concurrent composition service.

The load-bearing guarantee: the service adds scheduling — queueing,
deduplication, micro-batching, concurrency — but never semantics.  Every
payload must be byte-identical to calling ``compose`` / ``compose_chain``
directly, including under concurrent overlapping submissions (the
acceptance-criterion proof lives in :class:`TestConcurrentClients`).
"""

import threading
import time

import pytest

from repro.catalog import MappingCatalog
from repro.compose.composer import compose
from repro.compose.config import ComposerConfig
from repro.engine import ChainGrower, compose_chain
from repro.engine.workloads import WorkloadConfig, generate_workload, pairwise_problems
from repro.exceptions import (
    ServiceDeadlineError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.literature.problems import problem_by_name
from repro.service import CompositionService, ServiceConfig


def _constraints_text(result) -> str:
    return result.constraints.to_text()


@pytest.fixture()
def chains():
    return [tuple(problem.mappings) for problem in generate_workload(
        WorkloadConfig(num_problems=6, min_chain_length=3, max_chain_length=4, seed=17)
    )]


@pytest.fixture()
def service():
    with CompositionService() as svc:
        yield svc


class TestBasics:
    def test_problem_identical_to_direct_compose(self, service):
        problem = problem_by_name("example1_movies").problem
        direct = compose(problem)
        served = service.compose(problem)
        assert _constraints_text(served) == _constraints_text(direct)
        assert served.residual_sigma2 == direct.residual_sigma2
        assert served.attempted_symbols == direct.attempted_symbols

    def test_chain_identical_to_direct_compose_chain(self, service, chains):
        for chain in chains[:3]:
            direct = compose_chain(chain)
            served = service.compose_chain(chain)
            assert _constraints_text(served) == _constraints_text(direct)
            assert served.residual_symbols == direct.residual_symbols

    def test_partitioned_request(self, service):
        problem = problem_by_name("glav_chain").problem
        direct = compose(problem, ComposerConfig.cost_guided())
        served = service.compose(problem, partitioned=True)
        assert _constraints_text(served) == _constraints_text(direct)

    def test_per_request_config_override(self, service):
        problem = problem_by_name("glav_chain").problem
        fixed = service.compose(problem)
        cost = service.compose(problem, config=ComposerConfig.cost_guided())
        assert fixed.components == 0
        assert cost.components >= 1
        # Different configs never coalesce onto each other.
        assert _constraints_text(fixed) == _constraints_text(
            compose(problem, ComposerConfig())
        )

    def test_submissions_queue_before_start(self, chains):
        svc = CompositionService()
        ticket = svc.submit_chain(chains[0])  # accepted, waits for the loop
        assert not ticket.done()
        svc.start()
        assert _constraints_text(ticket.result(60)) == _constraints_text(
            compose_chain(chains[0])
        )
        svc.stop()
        with pytest.raises(ServiceError):
            svc.submit_chain(chains[0])  # a stopped service refuses work

    def test_failure_is_reported_not_swallowed(self, service, chains):
        # An unsatisfiable submission: empty chains are rejected immediately.
        with pytest.raises(ServiceError):
            service.submit_chain(())

    def test_stop_drains_queue(self, chains):
        svc = CompositionService(config=ServiceConfig(micro_batch_wait_seconds=0.0))
        svc.start()
        tickets = [svc.submit_chain(chain) for chain in chains]
        svc.stop()  # drain=True: everything already queued is served
        assert all(ticket.done() for ticket in tickets)
        for chain, ticket in zip(chains, tickets):
            assert _constraints_text(ticket.result(0)) == _constraints_text(
                compose_chain(chain)
            )


class TestDeduplication:
    def test_identical_requests_coalesce(self, chains):
        config = ServiceConfig(micro_batch_wait_seconds=0.05, micro_batch_size=64)
        with CompositionService(config=config) as svc:
            tickets = [svc.submit_chain(chains[0]) for _ in range(20)]
            results = [ticket.result(60) for ticket in tickets]
        assert any(ticket.coalesced for ticket in tickets)
        reference = _constraints_text(compose_chain(chains[0]))
        assert all(_constraints_text(result) == reference for result in results)
        metrics = svc.metrics()
        assert metrics["requests"]["deduplicated"] >= 1
        assert metrics["requests"]["submitted"] == 20

    def test_different_configs_do_not_coalesce(self, service):
        problem = problem_by_name("glav_chain").problem
        a = service.submit_problem(problem)
        b = service.submit_problem(problem, config=ComposerConfig.cost_guided())
        assert not b.coalesced or not a.coalesced
        assert a.result(60).components == 0
        assert b.result(60).components >= 1


class TestAdmissionControl:
    def test_overload_rejected_deterministically(self, chains):
        # The loop is not running yet, so the queue fills deterministically.
        config = ServiceConfig(max_pending=2)
        svc = CompositionService(config=config)
        first = svc.submit_chain(chains[0])
        second = svc.submit_chain(chains[1])
        with pytest.raises(ServiceOverloadedError):
            svc.submit_chain(chains[2])
        # Coalesced duplicates ride on an existing item: still admitted.
        duplicate = svc.submit_chain(chains[0])
        assert duplicate.coalesced
        assert svc.metrics()["requests"]["rejected"] == 1

        svc.start()
        svc.stop()  # drain serves the admitted items
        for chain, ticket in ((chains[0], first), (chains[1], second), (chains[0], duplicate)):
            assert _constraints_text(ticket.result(0)) == _constraints_text(
                compose_chain(chain)
            )


class TestBlockingAdmission:
    def test_deadline_expires_deterministically(self, chains):
        # Loop not running: the queue can never drain, so a blocked request
        # must ride out its whole deadline and then fail.
        config = ServiceConfig(max_pending=1, admission="block")
        svc = CompositionService(config=config)
        svc.submit_chain(chains[0])
        with pytest.raises(ServiceDeadlineError):
            svc.submit_chain(chains[1], deadline_seconds=0.05)
        metrics = svc.metrics()["requests"]
        assert metrics["blocked"] == 1
        assert metrics["deadline_expired"] == 1
        assert metrics["rejected"] == 0

    def test_deadline_error_is_an_overload_error(self):
        # HTTP keeps answering 429: the deadline error is a refinement of
        # overload, not a new failure class.
        assert issubclass(ServiceDeadlineError, ServiceOverloadedError)

    def test_service_wide_deadline_applies(self, chains):
        config = ServiceConfig(max_pending=1, admission="block", deadline_seconds=0.05)
        svc = CompositionService(config=config)
        svc.submit_chain(chains[0])
        with pytest.raises(ServiceDeadlineError):
            svc.submit_chain(chains[1])

    def test_blocked_submission_admitted_when_space_frees(self, chains):
        config = ServiceConfig(max_pending=1, admission="block")
        svc = CompositionService(config=config)
        first = svc.submit_chain(chains[0])
        admitted = {}

        def blocked_submit():
            admitted["ticket"] = svc.submit_chain(chains[1])

        waiter = threading.Thread(target=blocked_submit)
        waiter.start()
        time.sleep(0.05)
        assert waiter.is_alive()  # genuinely blocked, not rejected
        svc.start()  # draining the queue frees space and admits the waiter
        waiter.join(timeout=30)
        assert not waiter.is_alive()
        svc.stop()
        assert _constraints_text(first.result(0)) == _constraints_text(
            compose_chain(chains[0])
        )
        assert _constraints_text(admitted["ticket"].result(30)) == _constraints_text(
            compose_chain(chains[1])
        )
        assert svc.metrics()["requests"]["blocked"] == 1

    def test_stop_wakes_blocked_submitters(self, chains):
        config = ServiceConfig(max_pending=1, admission="block")
        svc = CompositionService(config=config)
        svc.submit_chain(chains[0])
        outcome = {}

        def blocked_submit():
            try:
                svc.submit_chain(chains[1])
            except ServiceError as exc:
                outcome["error"] = exc

        waiter = threading.Thread(target=blocked_submit)
        waiter.start()
        time.sleep(0.05)
        svc.stop(drain=False)
        waiter.join(timeout=30)
        assert not waiter.is_alive()
        assert isinstance(outcome["error"], ServiceError)

    def test_expired_deadline_beats_stop_wakeup(self, chains):
        # The race: a waiter whose deadline has already expired is woken by
        # stop()'s broadcast (or by the drain freeing space).  The outcome
        # must be deterministic — once the budget is spent the waiter gets
        # ServiceDeadlineError, never the generic "service is stopped" error,
        # whichever signal wins the wakeup.
        for _ in range(20):
            config = ServiceConfig(max_pending=1, admission="block")
            svc = CompositionService(config=config)
            svc.submit_chain(chains[0])
            outcome = {}
            started = threading.Event()

            def blocked_submit():
                started.set()
                try:
                    svc.submit_chain(chains[1], deadline_seconds=0.05)
                except ServiceError as exc:
                    outcome["error"] = exc

            waiter = threading.Thread(target=blocked_submit)
            waiter.start()
            started.wait()
            # Let the deadline expire while the waiter sleeps, then fire the
            # shutdown broadcast so both wake reasons arrive together.
            time.sleep(0.1)
            svc.stop(drain=False)
            waiter.join(timeout=30)
            assert not waiter.is_alive()
            assert isinstance(outcome["error"], ServiceDeadlineError), outcome[
                "error"
            ]

    def test_blocking_identical_results_under_burst(self, chains):
        # A tiny queue with blocking admission: every client eventually gets
        # a byte-identical result — blocking changes timing, never payloads.
        config = ServiceConfig(max_pending=1, admission="block", micro_batch_size=2)
        expected = {
            index: _constraints_text(compose_chain(chain))
            for index, chain in enumerate(chains)
        }
        results = {}
        errors = []
        with CompositionService(config=config) as svc:

            def client(index):
                try:
                    results[index] = _constraints_text(
                        svc.compose_chain(chains[index], timeout=120)
                    )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(len(chains))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not errors
        assert results == expected


class TestServiceGC:
    def test_run_gc_bounds_checkpoints_and_counts(self, tmp_path, chains):
        catalog = MappingCatalog(tmp_path / "cat")
        config = ServiceConfig(gc_checkpoint_max_files=1, gc_grace_seconds=0.0)
        with CompositionService(catalog, config) as svc:
            for chain in chains[:3]:
                svc.compose_chain(chain)
            assert catalog.checkpoints.disk_entries() > 1
            report = svc.run_gc()
        assert report["checkpoints"]["retained"] == 1
        assert catalog.checkpoints.disk_entries() == 1
        gc_metrics = svc.metrics()["gc"]
        assert gc_metrics["sweeps"] == 1
        assert gc_metrics["checkpoints_removed"] == report["checkpoints"]["removed"]

    def test_background_sweep_runs_periodically(self, tmp_path, chains):
        catalog = MappingCatalog(tmp_path / "cat")
        config = ServiceConfig(
            gc_interval_seconds=0.05, gc_checkpoint_max_files=1, gc_grace_seconds=0.0
        )
        with CompositionService(catalog, config) as svc:
            svc.compose_chain(chains[0])
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                metrics = svc.metrics()["gc"]
                if metrics["sweeps"] >= 1 and catalog.checkpoints.disk_entries() <= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("background sweep never bounded the checkpoint files")
        # Stopping the service stops the sweeper with it.
        sweeps = svc.metrics()["gc"]["sweeps"]
        time.sleep(0.15)
        assert svc.metrics()["gc"]["sweeps"] == sweeps

    def test_run_gc_without_catalog_is_a_noop(self, service):
        assert service.run_gc() is None


class TestConcurrentClients:
    def test_overlapping_concurrent_clients_byte_identical_to_serial(self, chains):
        """Acceptance criterion: N concurrent clients with overlapping requests
        receive results byte-identical to serial execution."""
        problems = [problem_by_name("example1_movies").problem,
                    problem_by_name("glav_chain").problem]
        serial_chain = {
            index: _constraints_text(compose_chain(chain))
            for index, chain in enumerate(chains)
        }
        serial_problem = {
            index: _constraints_text(compose(problem))
            for index, problem in enumerate(problems)
        }

        num_clients = 8
        outcomes = [[] for _ in range(num_clients)]
        errors = []
        config = ServiceConfig(micro_batch_wait_seconds=0.01, micro_batch_size=32)
        with CompositionService(config=config) as svc:
            barrier = threading.Barrier(num_clients)

            def client(client_index: int) -> None:
                try:
                    barrier.wait(10)
                    # Every client walks the same workload, offset so requests
                    # overlap heavily but not identically.
                    for step in range(len(chains)):
                        chain_index = (client_index + step) % len(chains)
                        ticket = svc.submit_chain(chains[chain_index])
                        problem_index = (client_index + step) % len(problems)
                        problem_ticket = svc.submit_problem(problems[problem_index])
                        outcomes[client_index].append(
                            ("chain", chain_index, ticket.result(120))
                        )
                        outcomes[client_index].append(
                            ("problem", problem_index, problem_ticket.result(120))
                        )
                except Exception as exc:  # noqa: BLE001 - surface in the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(num_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        for per_client in outcomes:
            assert len(per_client) == 2 * len(chains)
            for kind, index, result in per_client:
                expected = serial_chain[index] if kind == "chain" else serial_problem[index]
                assert _constraints_text(result) == expected

        metrics = svc.metrics()
        assert metrics["requests"]["completed"] >= 1
        assert metrics["requests"]["deduplicated"] >= 1  # overlap must coalesce
        assert metrics["requests"]["failed"] == 0


class TestCatalogIntegration:
    def test_served_chains_warm_the_persistent_store(self, tmp_path, chains):
        catalog = MappingCatalog(tmp_path / "cat")
        catalog.put_chain("history", chains[0])
        with CompositionService(catalog) as svc:
            cold = svc.compose_catalog("chain", "history")
        assert cold.reused_hops == 0

        restarted = MappingCatalog(tmp_path / "cat")
        with CompositionService(restarted) as svc:
            warm = svc.compose_catalog("chain", "history")
        assert warm.reused_hops == len(warm.hops)
        assert _constraints_text(warm) == _constraints_text(cold)

    def test_compose_catalog_requires_catalog(self, service):
        with pytest.raises(ServiceError):
            service.compose_catalog("chain", "x")


class TestMetrics:
    def test_snapshot_shape(self, service, chains):
        service.compose_chain(chains[0])
        metrics = service.metrics()
        assert set(metrics) == {
            "requests", "batching", "latency", "phases", "expression_cache",
            "checkpoints", "gc", "degradation", "replication", "breaker", "leases",
            "tracing", "histograms",
        }
        assert metrics["requests"]["completed"] == 1
        assert metrics["batching"]["batches"] == 1
        assert metrics["phases"]  # per-phase buckets aggregated from the hops
        assert metrics["latency"]["execution_seconds_total"] > 0
        assert metrics["checkpoints"]["entries"] >= 1
