"""Tests for the HTTP front-end — including the service smoke contract.

The smoke contract CI relies on: start the service, submit one composition
over HTTP, and the answer must be byte-identical to a direct ``compose()``.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.catalog import MappingCatalog
from repro.compose.composer import compose
from repro.engine import ChainGrower, compose_chain
from repro.literature.problems import problem_by_name
from repro.service import CompositionService, ServiceConfig, ServiceHTTPServer
from repro.textio.format import problem_to_text
from repro.textio.records import (
    chain_to_text,
    mapping_from_text,
    result_from_text,
    signature_to_text,
)


@pytest.fixture()
def stack(tmp_path):
    catalog = MappingCatalog(tmp_path / "cat")
    service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
    service.start()
    server = ServiceHTTPServer(service, port=0)  # ephemeral port
    server.start()
    host, port = server.address
    yield catalog, service, f"http://{host}:{port}"
    server.stop()
    service.stop()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, response.read().decode()


def _post(url: str, body: str):
    request = urllib.request.Request(url, data=body.encode(), method="POST")
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, response.read().decode(), dict(response.headers)


class TestEndpoints:
    def test_healthz(self, stack):
        _, _, base = stack
        status, body = _get(base + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["reasons"] == []
        assert health["breaker"]["state"] == "closed"
        assert "storage" in health and "gc" in health

    def test_healthz_degraded_when_breaker_open(self, stack):
        _, service, base = stack
        service.breaker.force_open("test: storage down")
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base + "/healthz")
            assert excinfo.value.code == 503
            health = json.loads(excinfo.value.read().decode())
            assert health["status"] == "degraded"
            assert any("breaker" in reason for reason in health["reasons"])
        finally:
            service.breaker.record_success()

    def test_smoke_compose_byte_identical_to_direct(self, stack):
        """Submit one composition; assert byte-identity with direct compose()."""
        _, _, base = stack
        problem = problem_by_name("example1_movies").problem
        status, text, headers = _post(base + "/compose", problem_to_text(problem))
        assert status == 200
        served = result_from_text(text)
        direct = compose(problem)
        assert served.constraints.to_text() == direct.constraints.to_text()
        assert served.residual_sigma2 == direct.residual_sigma2
        assert headers["X-Repro-Eliminated"] == str(len(direct.eliminated_symbols))

    def test_compose_chain_record(self, stack):
        _, _, base = stack
        chain = ChainGrower(seed=21, schema_size=4).grow_many(4)
        status, text, headers = _post(base + "/compose", chain_to_text(chain))
        assert status == 200
        direct = compose_chain(chain)
        assert mapping_from_text(text) == direct.to_mapping_with_residue()
        assert headers["X-Repro-Hops"] == str(len(direct.hops))

    def test_compose_stores_in_catalog(self, stack):
        catalog, _, base = stack
        problem = problem_by_name("glav_chain").problem
        status, _, _ = _post(
            base + "/compose?store=glav&order=cost", problem_to_text(problem)
        )
        assert status == 200
        stored = catalog.get_result("glav")
        assert stored.components >= 1  # served through the planner

    def test_metrics_endpoint(self, stack):
        _, _, base = stack
        problem = problem_by_name("example1_movies").problem
        _post(base + "/compose", problem_to_text(problem))
        status, body = _get(base + "/metrics")
        assert status == 200
        metrics = json.loads(body)
        assert metrics["requests"]["completed"] >= 1
        assert "checkpoints" in metrics and "phases" in metrics

    def test_catalog_endpoints(self, stack):
        catalog, _, base = stack
        chain = ChainGrower(seed=22, schema_size=3).grow_many(3)
        catalog.put_chain("history", chain)
        catalog.put_schema("first", chain[0].input_signature)

        status, body = _get(base + "/catalog")
        listing = json.loads(body)
        assert status == 200
        assert {entry["name"] for entry in listing["entries"]} == {"history", "first"}

        status, body = _get(base + "/catalog/schema/first")
        assert status == 200
        assert body == catalog.text("schema", "first")
        assert body == signature_to_text(chain[0].input_signature, name="first")

    def test_errors(self, stack):
        _, _, base = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/catalog/mapping/missing")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/nope")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base + "/compose", "[garbage\n")
        assert excinfo.value.code == 400

    def test_malformed_content_length_is_400(self, stack):
        import http.client

        _, _, base = stack
        host, port = base.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            connection.putrequest("POST", "/compose")
            connection.putheader("Content-Length", "not-a-number")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()


class TestRetryAfter:
    """Degraded answers tell clients *when* to come back (satellite of PR 8)."""

    def test_degraded_healthz_carries_retry_after(self, stack):
        import math

        _, service, base = stack
        service.breaker.force_open("test: storage down")
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base + "/healthz")
            assert excinfo.value.code == 503
            expected = max(1, math.ceil(service.config.breaker_recovery_seconds))
            assert int(excinfo.value.headers["Retry-After"]) == expected
        finally:
            service.breaker.record_success()

    def test_store_dropped_carries_retry_after(self, stack):
        _, service, base = stack
        problem = problem_by_name("example1_movies").problem
        service.breaker.force_open("test: storage down")
        try:
            status, _, headers = _post(
                base + "/compose?store=dropped", problem_to_text(problem)
            )
            # The composition still succeeds; only durability degraded.
            assert status == 200
            assert headers["X-Repro-Store-Dropped"] == "1"
            assert int(headers["Retry-After"]) >= 1
        finally:
            service.breaker.record_success()

    def test_overloaded_submission_carries_retry_after(self, tmp_path):
        from repro.catalog import MappingCatalog
        from repro.service import CompositionService, ServiceConfig, ServiceHTTPServer

        catalog = MappingCatalog(tmp_path / "cat")
        service = CompositionService(
            catalog,
            ServiceConfig(micro_batch_wait_seconds=0.0, max_pending=1),
        )
        # Deliberately NOT started: the queue never drains, so the second
        # submission over HTTP is rejected at admission.
        server = ServiceHTTPServer(service, port=0)
        server.start()
        try:
            host, port = server.address
            base = f"http://{host}:{port}"
            service.submit_problem(problem_by_name("example1_movies").problem)
            # A *different* problem: an identical one would coalesce with the
            # in-flight ticket instead of being admission-rejected.
            other = problem_by_name("example3_inclusion_chain").problem
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base + "/compose", problem_to_text(other))
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
        finally:
            server.stop()


class TestReplicaAcks:
    """``ack_level=replica``: acks wait for a follower, or degrade to 202."""

    @pytest.fixture()
    def rstack(self, tmp_path):
        catalog = MappingCatalog(tmp_path / "cat")
        service = CompositionService(
            catalog,
            ServiceConfig(
                micro_batch_wait_seconds=0.0,
                ack_level="replica",
                replica_ack_timeout_seconds=0.2,
            ),
        )
        service.start()
        server = ServiceHTTPServer(service, port=0)
        server.start()
        host, port = server.address
        yield catalog, service, f"http://{host}:{port}"
        server.stop()
        service.stop()

    def test_ack_level_validation(self):
        from repro.exceptions import EngineError

        with pytest.raises(EngineError):
            ServiceConfig(ack_level="paxos")
        with pytest.raises(EngineError):
            ServiceConfig(replica_ack_timeout_seconds=0)

    def test_store_without_followers_degrades_to_202(self, rstack):
        catalog, _, base = rstack
        problem = problem_by_name("example1_movies").problem
        status, _, headers = _post(
            base + "/compose?store=pending", problem_to_text(problem)
        )
        assert status == 202
        assert headers["x-repro-ack-pending"] == "1"
        assert headers["x-repro-epoch"] == "0"
        # The write is durable on the primary either way.
        assert "pending" in catalog.names("result")

    def test_store_with_caught_up_follower_acks_200(self, rstack):
        catalog, service, base = rstack
        # A follower far ahead on every shard: the ack wait is satisfied
        # the moment the entry lands.
        for shard in range(16):
            service.record_follower_applied("f1", shard, 10**9)
        problem = problem_by_name("example1_movies").problem
        status, _, headers = _post(
            base + "/compose?store=acked", problem_to_text(problem)
        )
        assert status == 200
        assert "x-repro-ack-pending" not in headers
        assert headers["x-repro-epoch"] == "0"
        metrics = service.metrics()
        assert metrics["replication"]["replica_acks_satisfied"] >= 1

    def test_journal_poll_piggybacks_the_ack(self, rstack):
        catalog, service, base = rstack
        status, _ = _get(base + "/journal/3?since=0&follower=f1&applied=7")
        assert status == 200
        assert service.replica_applied_seq(3) == 7
        # ... and the floor is persisted for GC retention.
        acks = json.loads((catalog.journal.directory / "replica-acks.json").read_text())
        assert acks["followers"]["f1"]["applied"]["3"] == 7

    def test_stale_epoch_store_is_409(self, rstack):
        catalog, service, base = rstack
        catalog.journal.fence(1)  # a promoted replica outranks this root
        problem = problem_by_name("example1_movies").problem
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base + "/compose?store=zombie", problem_to_text(problem))
        assert excinfo.value.code == 409
        assert "zombie" not in catalog.names("result")
        # Fencing is not storage sickness: the breaker stays closed.
        assert service.breaker.state == "closed"
        metrics = service.metrics()
        assert metrics["replication"]["stale_epoch_rejected"] == 1

    def test_metrics_and_health_report_the_epoch(self, stack):
        catalog, _, base = stack
        catalog.bump_epoch()
        _, body = _get(base + "/metrics")
        assert json.loads(body)["epoch"] == 1
        _, body = _get(base + "/healthz")
        assert json.loads(body)["epoch"] == 1


class TestThreadFailureCounters:
    def test_gc_sweep_failures_surface_in_health_and_metrics(self, stack):
        _, service, base = stack
        service.metrics_store.record_gc_sweep_failure("OSError")
        service._gc_consecutive_failures = 2
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base + "/healthz")
            assert excinfo.value.code == 503
            health = json.loads(excinfo.value.read().decode())
            assert any("gc sweep failing (2 consecutive)" in r for r in health["reasons"])
            assert health["gc"]["sweep_failures"] == 1
            assert health["gc"]["consecutive_failures"] == 2
            _, body = _get(base + "/metrics")
            metrics = json.loads(body)
            assert metrics["gc"]["gc_sweep_failures"] == 1
            assert metrics["gc"]["gc_sweep_failure_types"] == {"OSError": 1}
        finally:
            service._gc_consecutive_failures = 0

    def test_failing_gc_sweep_keeps_the_loop_alive(self, tmp_path):
        from repro.catalog import MappingCatalog
        from repro.service import CompositionService, ServiceConfig

        catalog = MappingCatalog(tmp_path / "cat")
        service = CompositionService(
            catalog,
            ServiceConfig(micro_batch_wait_seconds=0.0, gc_interval_seconds=0.01),
        )

        def broken_gc(**kwargs):
            raise OSError("injected sweep failure")

        catalog.gc = broken_gc
        service.start()
        try:
            import time as _time

            deadline = _time.monotonic() + 10
            while _time.monotonic() < deadline:
                if service.metrics_store.gc_sweep_failures >= 2:
                    break
                _time.sleep(0.01)
            assert service.metrics_store.gc_sweep_failures >= 2
            assert service._gc_thread.is_alive()
            health = service.health()
            assert health["status"] == "degraded"
            assert any("gc sweep failing" in r for r in health["reasons"])
        finally:
            service.stop()
