"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.algebra.conditions import equals, equals_const
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Intersection,
    Projection,
    Relation,
    Selection,
    Union,
)
from repro.schema.instance import Instance
from repro.schema.signature import RelationSchema, Signature


@pytest.fixture
def r2() -> Relation:
    """A binary relation R."""
    return Relation("R", 2)


@pytest.fixture
def s2() -> Relation:
    """A binary relation S."""
    return Relation("S", 2)


@pytest.fixture
def t2() -> Relation:
    """A binary relation T."""
    return Relation("T", 2)


@pytest.fixture
def small_signature() -> Signature:
    """A small signature with relations of arity 1 and 2."""
    return Signature(
        [
            RelationSchema("R", 2),
            RelationSchema("S", 2),
            RelationSchema("T", 2),
            RelationSchema("U", 1),
        ]
    )


@pytest.fixture
def small_instance(small_signature) -> Instance:
    """A small instance over the small signature."""
    return Instance(
        {
            "R": {(1, 2), (2, 3), (3, 3)},
            "S": {(1, 2), (3, 3), (4, 1)},
            "T": {(2, 3), (4, 1)},
            "U": {(1,), (2,)},
        },
        small_signature,
    )


def random_instance(
    signature: Signature, seed: int, domain_size: int = 4, max_rows: int = 5
) -> Instance:
    """Build a deterministic pseudo-random instance over ``signature``."""
    rng = random.Random(seed)
    contents = {}
    for schema in signature.relations():
        rows = set()
        for _ in range(rng.randint(0, max_rows)):
            rows.add(tuple(rng.randint(0, domain_size - 1) for _ in range(schema.arity)))
        contents[schema.name] = rows
    return Instance(contents, signature)


def expression_samples(include_extended: bool = False):
    """A list of hand-built expressions over R/2, S/2, T/2, U/1 covering every operator."""
    r, s, t = Relation("R", 2), Relation("S", 2), Relation("T", 2)
    u = Relation("U", 1)
    samples = [
        r,
        Domain(2),
        Empty(2),
        Union(r, s),
        Intersection(r, s),
        Difference(r, s),
        CrossProduct(u, r),
        Selection(r, equals(0, 1)),
        Selection(s, equals_const(1, 2)),
        Projection(r, (1, 0)),
        Projection(CrossProduct(r, s), (0, 3)),
        Union(Difference(r, s), Intersection(s, t)),
        Projection(Selection(CrossProduct(r, s), equals(1, 2)), (0, 3)),
    ]
    if include_extended:
        from repro.algebra.expressions import AntiSemiJoin, LeftOuterJoin, SemiJoin

        samples.extend(
            [
                SemiJoin(r, s, equals(0, 2)),
                AntiSemiJoin(r, s, equals(0, 2)),
                LeftOuterJoin(r, s, equals(1, 2)),
            ]
        )
    return samples
