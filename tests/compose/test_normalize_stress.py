"""Stress tests for the worklist-based left/right normalization drivers.

The drivers used to rebuild the working list with ``working[:i] + replacement
+ working[i+1:]`` and re-scan it from the start after every rewrite — O(n²)
in the number of constraints.  These tests pin the rewritten drivers to the
old semantics on a 500-constraint set and keep an eye on the wall clock (the
bound is generous; the point is catching an accidental return to quadratic
list rebuilding, which used to take orders of magnitude longer).
"""

import time

from repro.algebra.builders import relation, select
from repro.algebra.conditions import equals
from repro.algebra.expressions import Relation, Union
from repro.compose.left_normalize import left_normalize
from repro.compose.normalize_context import NormalizationContext
from repro.compose.right_normalize import right_normalize
from repro.constraints.constraint import ContainmentConstraint
from repro.constraints.constraint_set import ConstraintSet

N = 500


def _left_stress_set():
    """500 containments whose left sides all need several rewriting steps."""
    constraints = []
    for index in range(N):
        lhs = select(
            Union(relation("S", 2), relation(f"A{index}", 2)), equals(0, 1)
        )
        constraints.append(ContainmentConstraint(lhs, relation(f"B{index}", 2)))
    return ConstraintSet(constraints)


def _right_stress_set():
    """500 containments whose right sides all need several rewriting steps."""
    constraints = []
    for index in range(N):
        rhs = select(
            Union(relation("S", 2), relation(f"A{index}", 2)), equals(0, 1)
        )
        constraints.append(ContainmentConstraint(relation(f"B{index}", 2), rhs))
    return ConstraintSet(constraints)


class TestNormalizationStress:
    def test_left_normalize_500_constraints(self):
        constraints = _left_stress_set()
        context = NormalizationContext(symbol="S", symbol_arity=2)
        started = time.perf_counter()
        normalized = left_normalize(constraints, "S", context, max_steps=10 * N)
        elapsed = time.perf_counter() - started

        assert normalized is not None
        normalized_set, xi = normalized
        assert xi.left == Relation("S", 2)
        # Every constraint not about S survives; S has exactly one left bound.
        lefts_mentioning = [
            c for c in normalized_set if c.mentions_on_left("S")
        ]
        assert lefts_mentioning == [xi]
        # Generous ceiling: the quadratic driver took far longer at this size.
        assert elapsed < 10.0

    def test_right_normalize_500_constraints(self):
        constraints = _right_stress_set()
        context = NormalizationContext(symbol="S", symbol_arity=2)
        started = time.perf_counter()
        normalized = right_normalize(constraints, "S", context, max_steps=10 * N)
        elapsed = time.perf_counter() - started

        assert normalized is not None
        normalized_set, xi = normalized
        assert xi.right == Relation("S", 2)
        rights_mentioning = [
            c for c in normalized_set if c.mentions_on_right("S")
        ]
        assert rights_mentioning == [xi]
        assert elapsed < 10.0

    def test_left_normalize_collapses_bounds_in_input_order(self):
        # Three bounds on S collapse into one nested intersection, preserving
        # the original left-to-right order (byte-identical output contract).
        constraints = ConstraintSet(
            [
                ContainmentConstraint(relation("S", 2), relation("B0", 2)),
                ContainmentConstraint(relation("S", 2), relation("B1", 2)),
                ContainmentConstraint(relation("S", 2), relation("B2", 2)),
            ]
        )
        context = NormalizationContext(symbol="S", symbol_arity=2)
        normalized = left_normalize(constraints, "S", context)
        assert normalized is not None
        _, xi = normalized
        assert str(xi.right) == "((B0/2 intersect B1/2) intersect B2/2)"

    def test_step_budget_counts_rewrites(self):
        # A union of k operands needs k-1 union splits plus selection steps;
        # an insufficient budget must fail exactly as the quadratic driver did.
        constraints = _left_stress_set()
        context = NormalizationContext(symbol="S", symbol_arity=2)
        assert left_normalize(constraints, "S", context, max_steps=5) is None
