"""Tests for per-symbol elapsed-time recording in COMPOSE.

``compose()`` must stamp every :class:`EliminationOutcome` with the wall-clock
time it spent on that symbol, so the per-symbol timings the experiments
aggregate (Figure 3) are available directly from the result.
"""

from repro.compose.composer import compose
from repro.compose.eliminate import eliminate
from repro.constraints.constraint_set import ConstraintSet
from repro.literature.problems import all_problems


def _sample_problems(count=5):
    return [problem.problem for problem in all_problems()[:count]]


def test_every_outcome_records_positive_duration():
    for problem in _sample_problems():
        result = compose(problem)
        assert result.outcomes, "sample problem should attempt at least one symbol"
        for outcome in result.outcomes:
            assert outcome.duration_seconds > 0.0, outcome
            # elapsed_seconds is the documented alias.
            assert outcome.elapsed_seconds == outcome.duration_seconds


def test_per_symbol_durations_sum_below_total_elapsed():
    for problem in _sample_problems():
        result = compose(problem)
        assert result.elimination_seconds == sum(
            outcome.duration_seconds for outcome in result.outcomes
        )
        # The whole-run timer also covers the final simplification pass, so it
        # bounds the per-symbol total from above.
        assert result.elimination_seconds <= result.elapsed_seconds


def test_compose_times_not_mentioned_symbols_too():
    # A symbol no constraint mentions is eliminated for free, but the outcome
    # still records the (tiny) time COMPOSE observed for it.
    problem = _sample_problems(1)[0]
    result = compose(problem)
    for outcome in result.outcomes:
        assert outcome.duration_seconds > 0.0


def test_standalone_eliminate_still_records_its_own_timing():
    problem = _sample_problems(1)[0]
    symbol = problem.sigma2.names()[0]
    _, outcome = eliminate(
        problem.all_constraints, symbol, problem.sigma2.arity_of(symbol)
    )
    assert outcome.duration_seconds > 0.0


def test_empty_constraint_set_outcome_timed():
    _, outcome = eliminate(ConstraintSet(), "ghost", 2)
    assert outcome.success
    assert outcome.duration_seconds > 0.0
