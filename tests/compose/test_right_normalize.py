"""Tests for right-normalization (Section 3.5.1), including Skolemization."""

from repro.algebra.conditions import equals_const
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Intersection,
    Projection,
    Relation,
    Selection,
    SkolemApplication,
    Union,
)
from repro.algebra.traversal import contains_skolem, skolem_functions
from repro.compose.normalize_context import NormalizationContext
from repro.compose.right_normalize import (
    right_normalize,
    rewrite_right_once,
    skolemize_projection_bound,
)
from repro.constraints.constraint import ContainmentConstraint
from repro.constraints.constraint_set import ConstraintSet

R, S, T, U = Relation("R", 2), Relation("S", 2), Relation("T", 2), Relation("U", 1)


def context(arity=2):
    return NormalizationContext(symbol="S", symbol_arity=arity)


class TestRewriteRules:
    def test_union_on_right_keeps_symbol_operand(self):
        rewritten = rewrite_right_once(R, Union(S, T), "S", context())
        assert rewritten == [(Difference(R, T), S)]
        rewritten = rewrite_right_once(R, Union(T, S), "S", context())
        assert rewritten == [(Difference(R, T), S)]

    def test_intersection_on_right_splits(self):
        rewritten = rewrite_right_once(R, Intersection(S, T), "S", context())
        assert rewritten == [(R, S), (R, T)]

    def test_product_on_right_projects_lhs(self):
        wide = Relation("W", 3)
        rewritten = rewrite_right_once(wide, CrossProduct(S, U), "S", context())
        assert rewritten == [
            (Projection(wide, (0, 1)), S),
            (Projection(wide, (2,)), U),
        ]

    def test_difference_on_right(self):
        rewritten = rewrite_right_once(R, Difference(S, T), "S", context())
        assert rewritten == [(R, S), (Intersection(R, T), Empty(2))]

    def test_selection_on_right(self):
        rewritten = rewrite_right_once(R, Selection(S, equals_const(0, 1)), "S", context())
        assert rewritten == [(R, S), (R, Selection(Domain(2), equals_const(0, 1)))]

    def test_projection_on_right_skolemizes(self):
        rewritten = rewrite_right_once(U, Projection(S, (0,)), "S", context())
        [(new_left, new_right)] = rewritten
        assert new_right == S
        assert contains_skolem(new_left)
        assert new_left.arity == 2

    def test_unknown_operator_fails(self):
        from repro.algebra.conditions import equals
        from repro.algebra.expressions import SemiJoin

        assert rewrite_right_once(R, SemiJoin(S, T, equals(0, 2)), "S", context()) is None


class TestSkolemizeProjectionBound:
    def test_identity_positions(self):
        bound = skolemize_projection_bound(U, (0,), 2, context())
        # Column 0 is the original, column 1 is the fresh Skolem column.
        assert isinstance(bound, SkolemApplication)
        assert bound.arity == 2

    def test_permuted_positions(self):
        bound = skolemize_projection_bound(U, (1,), 2, context())
        assert isinstance(bound, Projection)
        assert bound.arity == 2
        assert contains_skolem(bound)

    def test_multiple_missing_columns(self):
        bound = skolemize_projection_bound(U, (1,), 3, context())
        assert bound.arity == 3
        assert len(skolem_functions(bound)) == 2

    def test_duplicate_indices_fail(self):
        assert skolemize_projection_bound(R, (0, 0), 3, context()) is None

    def test_skolem_depends_on_all_lhs_columns(self):
        bound = skolemize_projection_bound(R, (0, 1), 3, context())
        functions = skolem_functions(bound)
        assert all(f.depends_on == (0, 1) for f in functions)


class TestRightNormalize:
    def test_paper_example_13(self):
        s, t = Relation("S", 2), Relation("T", 3)
        u, r = Relation("U", 5), Relation("R", 3)
        constraints = ConstraintSet(
            [
                ContainmentConstraint(CrossProduct(s, t), u),
                ContainmentConstraint(
                    t, CrossProduct(Selection(s, equals_const(0, "c")), Projection(r, (0,)))
                ),
            ]
        )
        normalized = right_normalize(constraints, "S", context())
        assert normalized is not None
        result, xi = normalized
        assert xi.right == s
        # The first constraint is left untouched (S appears only on its lhs).
        assert ContainmentConstraint(CrossProduct(s, t), u) in result
        # The second constraint was decomposed; one piece is π(T) ⊆ σ_c-related domain check.
        assert any(
            constraint.right == Selection(Domain(2), equals_const(0, "c"))
            for constraint in result
        )

    def test_paper_example_14_introduces_skolem(self):
        r = Relation("R", 1)
        s1 = Relation("S", 1)
        t, u = Relation("T", 2), Relation("U", 2)
        constraints = ConstraintSet(
            [
                ContainmentConstraint(
                    r, Projection(CrossProduct(s1, Intersection(t, u)), (0,))
                )
            ]
        )
        normalized = right_normalize(constraints, "S", NormalizationContext("S", 1))
        assert normalized is not None
        result, xi = normalized
        assert xi.right == s1
        assert contains_skolem(xi.left)

    def test_no_lower_bound_adds_empty(self):
        constraints = ConstraintSet([ContainmentConstraint(S, R)])
        result, xi = right_normalize(constraints, "S", context())
        assert xi == ContainmentConstraint(Empty(2), S)

    def test_multiple_lower_bounds_collapse_to_union(self):
        constraints = ConstraintSet(
            [ContainmentConstraint(R, S), ContainmentConstraint(T, S)]
        )
        result, xi = right_normalize(constraints, "S", context())
        assert xi.left == Union(R, T)
        assert len(result) == 1

    def test_unrelated_constraints_pass_through(self):
        unrelated = ContainmentConstraint(R, T)
        constraints = ConstraintSet([unrelated, ContainmentConstraint(R, S)])
        result, _ = right_normalize(constraints, "S", context())
        assert unrelated in result
