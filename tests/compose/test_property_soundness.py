"""Property-style soundness tests for the full composition pipeline.

For each literature problem (and a few synthetic ones), generate seeded random
instances over the combined signature; whenever an instance satisfies the
*input* constraints, its restriction to the surviving symbols must satisfy the
*output* constraints — the soundness half of the paper's equivalence notion.
"""

from __future__ import annotations

import pytest

from repro.compose.composer import compose
from repro.constraints.satisfaction import check_soundness_on_instance
from repro.literature.problems import all_problems
from tests.conftest import random_instance

#: Problems whose evaluation stays cheap on random instances (no huge D^r blowups).
_CHEAP_PROBLEMS = [
    "example1_movies",
    "example3_inclusion_chain",
    "example5_view_unfolding",
    "example7_left_compose",
    "example8_intersection_left",
    "example13_right_compose",
    "glav_chain",
    "view_unfolding_query",
    "melnik_purchase_orders",
    "evolution_add_then_drop",
    "horizontal_partition_merge",
    "copy_rename_chain",
    "difference_monotonicity",
    "union_split_targets",
    "selection_pushthrough",
    "two_step_projection",
    "lav_existential_target",
]


@pytest.mark.parametrize("name", _CHEAP_PROBLEMS)
def test_composition_is_sound_on_random_instances(name):
    problem = next(p for p in all_problems() if p.name == name)
    result = compose(problem.problem)
    signature = problem.problem.combined_signature
    checked = 0
    for seed in range(30):
        instance = random_instance(signature, seed, domain_size=3, max_rows=4)
        ok, violated = check_soundness_on_instance(
            instance, problem.problem.all_constraints, result.constraints
        )
        assert ok, f"{name}: unsound output on seed {seed}: {violated}"
        checked += 1
    assert checked == 30


def test_composition_completeness_witness_for_chain():
    """For the inclusion chain, every instance satisfying the output extends to the input."""
    from repro.constraints.satisfaction import satisfies_all
    from repro.schema.instance import Instance

    problem = next(p for p in all_problems() if p.name == "example3_inclusion_chain")
    result = compose(problem.problem)
    # Output should be R ⊆ T; build a satisfying (R, T) pair and extend with S := R.
    instance = Instance({"R": {(1, 2)}, "T": {(1, 2), (3, 4)}})
    assert satisfies_all(instance, result.constraints)
    extended = instance.updating("S", instance.relation("R"))
    assert satisfies_all(extended, problem.problem.all_constraints)


def test_partial_composition_output_never_mentions_eliminated_symbols():
    for problem in all_problems():
        result = compose(problem.problem)
        mentioned = result.constraints.relation_names()
        for symbol in result.eliminated_symbols:
            assert symbol not in mentioned, (
                f"{problem.name}: symbol {symbol} reported eliminated but still mentioned"
            )
