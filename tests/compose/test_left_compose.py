"""Tests for the left-compose step (Section 3.4)."""

from repro.algebra.conditions import equals
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Intersection,
    Projection,
    Relation,
    Union,
)
from repro.compose.left_compose import left_compose
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.operators.registry import default_registry

R, S, T, U = Relation("R", 2), Relation("S", 2), Relation("T", 2), Relation("U", 1)


class TestLeftCompose:
    def test_paper_examples_7_and_10(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(Difference(R, S), T),
                ContainmentConstraint(Projection(S, (0,)), U),
            ]
        )
        result = left_compose(constraints, "S", 2)
        assert result is not None
        assert not result.mentions("S")
        # Expected shape: R ⊆ (U × D) ∪ T (modulo column placement details).
        assert len(result) == 1
        [constraint] = list(result)
        assert constraint.left == R
        assert isinstance(constraint.right, Union)

    def test_paper_examples_9_11_12_domain_elimination(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(Intersection(R, T), S),
                ContainmentConstraint(U, Projection(S, (0,))),
            ]
        )
        result = left_compose(constraints, "S", 2)
        assert result is not None
        # Both constraints reduce to containments in D^r and are deleted.
        assert len(result) == 0

    def test_symbol_on_both_sides_fails(self):
        constraints = ConstraintSet([ContainmentConstraint(S, Union(S, R))])
        assert left_compose(constraints, "S", 2) is None

    def test_non_monotone_rhs_fails(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(R, Difference(T, S)),
                ContainmentConstraint(S, T),
            ]
        )
        assert left_compose(constraints, "S", 2) is None

    def test_unknown_operator_rhs_fails_without_registry(self):
        from repro.algebra.expressions import SemiJoin

        constraints = ConstraintSet(
            [
                ContainmentConstraint(R, SemiJoin(S, T, equals(0, 2))),
                ContainmentConstraint(S, T),
            ]
        )
        assert left_compose(constraints, "S", 2) is None
        # With the registry, the semijoin is known to be monotone and composition succeeds.
        assert left_compose(constraints, "S", 2, default_registry()) is not None

    def test_equalities_mentioning_symbol_are_split(self):
        constraints = ConstraintSet(
            [
                EqualityConstraint(S, R),
                ContainmentConstraint(T, Union(S, T)),
            ]
        )
        result = left_compose(constraints, "S", 2)
        assert result is not None
        assert not result.mentions("S")
        # R ⊆ S became R ⊆ E1 where E1 is the upper bound R — a trivial constraint.
        assert ContainmentConstraint(T, Union(R, T)) in result

    def test_soundness_on_instances(self):
        """Left compose output must be implied by the input (soundness check)."""
        from repro.constraints.satisfaction import check_soundness_on_instance
        from tests.conftest import random_instance
        from repro.schema.signature import Signature

        constraints = ConstraintSet(
            [
                ContainmentConstraint(Difference(R, S), T),
                ContainmentConstraint(Projection(S, (0,)), U),
            ]
        )
        result = left_compose(constraints, "S", 2)
        signature = Signature.from_arities({"R": 2, "S": 2, "T": 2, "U": 1})
        for seed in range(25):
            instance = random_instance(signature, seed)
            ok, violated = check_soundness_on_instance(instance, constraints, result)
            assert ok, f"unsound rewrite on seed {seed}: {violated}"

    def test_untouched_constraints_survive(self):
        unrelated = ContainmentConstraint(R, T)
        constraints = ConstraintSet([unrelated, ContainmentConstraint(S, R)])
        result = left_compose(constraints, "S", 2)
        assert unrelated in result

    def test_upper_bound_from_multiple_constraints(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(S, R),
                ContainmentConstraint(S, T),
                ContainmentConstraint(U, Projection(S, (1,))),
            ]
        )
        result = left_compose(constraints, "S", 2)
        assert result is not None
        [constraint] = list(result)
        assert constraint.left == U
        assert constraint.right == Projection(Intersection(R, T), (1,))
