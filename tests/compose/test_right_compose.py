"""Tests for the right-compose step (Section 3.5)."""

from repro.algebra.conditions import equals, equals_const
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Intersection,
    Projection,
    Relation,
    Selection,
    Union,
)
from repro.compose.right_compose import right_compose
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.constraints.satisfaction import check_soundness_on_instance
from repro.schema.signature import Signature
from tests.conftest import random_instance

R, S, T, U = Relation("R", 2), Relation("S", 2), Relation("T", 2), Relation("U", 1)


class TestRightCompose:
    def test_simple_chain(self):
        constraints = ConstraintSet(
            [ContainmentConstraint(R, S), ContainmentConstraint(S, T)]
        )
        result = right_compose(constraints, "S", 2)
        assert result == ConstraintSet([ContainmentConstraint(R, T)])

    def test_paper_example_15(self):
        s, t = Relation("S", 2), Relation("T", 3)
        u, r = Relation("U", 5), Relation("R", 3)
        constraints = ConstraintSet(
            [
                ContainmentConstraint(CrossProduct(s, t), u),
                ContainmentConstraint(
                    t, CrossProduct(Selection(s, equals_const(0, "c")), Projection(r, (0,)))
                ),
            ]
        )
        result = right_compose(constraints, "S", 2)
        assert result is not None
        assert not result.mentions("S")
        # The substituted lower bound π(T) appears inside the product constraint.
        assert any(
            isinstance(constraint.left, CrossProduct)
            and constraint.right == u
            for constraint in result
        )

    def test_symbol_on_both_sides_fails(self):
        constraints = ConstraintSet([ContainmentConstraint(Union(S, R), S)])
        assert right_compose(constraints, "S", 2) is None

    def test_non_monotone_lhs_fails(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(Difference(T, S), R),
                ContainmentConstraint(T, S),
            ]
        )
        assert right_compose(constraints, "S", 2) is None

    def test_projection_chain_deskolemizes(self):
        """R ⊆ π(S), S ⊆ T  ⇒  R ⊆ π(T) (LAV-style composition)."""
        constraints = ConstraintSet(
            [
                ContainmentConstraint(U, Projection(S, (0,))),
                ContainmentConstraint(S, T),
            ]
        )
        result = right_compose(constraints, "S", 2)
        assert result is not None
        assert not result.contains_skolem()
        assert result == ConstraintSet([ContainmentConstraint(U, Projection(T, (0,)))])

    def test_projection_chain_with_two_targets_combines(self):
        """f(U) ⊆ T and f(U) ⊆ W combine into U ⊆ π(T ∩ W)."""
        w = Relation("W", 2)
        constraints = ConstraintSet(
            [
                ContainmentConstraint(U, Projection(S, (0,))),
                ContainmentConstraint(S, T),
                ContainmentConstraint(S, w),
            ]
        )
        result = right_compose(constraints, "S", 2)
        assert result is not None
        assert not result.contains_skolem()
        [constraint] = list(result)
        assert constraint.left == U
        assert constraint.right == Projection(Intersection(T, w), (0,))

    def test_skolem_under_selection_fails(self):
        """The Fagin employee/manager pattern: a selection on the Skolem column."""
        emp = Relation("Emp", 1)
        mgr1 = Relation("Mgr1", 2)
        self_mgr = Relation("SelfMgr", 1)
        constraints = ConstraintSet(
            [
                ContainmentConstraint(emp, Projection(mgr1, (0,))),
                ContainmentConstraint(
                    Projection(Selection(mgr1, equals(0, 1)), (0,)), self_mgr
                ),
            ]
        )
        assert right_compose(constraints, "Mgr1", 2) is None

    def test_repeated_skolem_function_fails(self):
        """The paper's Example 17 shape: the same Skolem function twice in one constraint."""
        e = Relation("E", 2)
        f = Relation("F", 2)
        c = Relation("C", 2)
        d = Relation("D_rel", 2)
        constraints = ConstraintSet(
            [
                ContainmentConstraint(Projection(e, (0,)), Projection(c, (0,))),
                ContainmentConstraint(Projection(e, (1,)), Projection(c, (0,))),
                ContainmentConstraint(
                    Projection(
                        Selection(
                            CrossProduct(CrossProduct(e, c), c),
                            equals(0, 2),
                        ),
                        (3, 5),
                    ),
                    d,
                ),
            ]
        )
        assert right_compose(constraints, "C", 2) is None

    def test_no_lower_bound_uses_empty(self):
        constraints = ConstraintSet([ContainmentConstraint(Intersection(R, S), T)])
        result = right_compose(constraints, "S", 2)
        # S gets the vacuous lower bound ∅; R ∩ ∅ ⊆ T is trivially satisfied and dropped.
        assert result is not None
        assert len(result) == 0

    def test_equalities_are_split(self):
        constraints = ConstraintSet(
            [EqualityConstraint(S, R), ContainmentConstraint(S, T)]
        )
        result = right_compose(constraints, "S", 2)
        assert result is not None
        assert not result.mentions("S")
        assert ContainmentConstraint(R, T) in result

    def test_soundness_on_instances(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(U, Projection(S, (0,))),
                ContainmentConstraint(S, T),
                ContainmentConstraint(R, S),
            ]
        )
        result = right_compose(constraints, "S", 2)
        assert result is not None
        signature = Signature.from_arities({"R": 2, "S": 2, "T": 2, "U": 1})
        for seed in range(25):
            instance = random_instance(signature, seed)
            ok, violated = check_soundness_on_instance(instance, constraints, result)
            assert ok, f"unsound rewrite on seed {seed}: {violated}"

    def test_untouched_constraints_survive(self):
        unrelated = ContainmentConstraint(R, T)
        constraints = ConstraintSet([unrelated, ContainmentConstraint(R, S)])
        result = right_compose(constraints, "S", 2)
        assert unrelated in result
