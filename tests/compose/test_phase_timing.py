"""Per-phase timing buckets of COMPOSE and the chain engine.

``CompositionResult.phase_seconds`` splits the old ``elapsed_seconds`` lump
into named buckets (normalize / view-unfold / left-right compose / eliminate /
deskolemize / simplify), and ``ChainHop`` separates problem-assembly time
from composition time.  The buckets nest (see ``repro.compose.phases``), so
the invariants tested here compare children against their parents, not a sum
against the total.
"""

from repro.compose.composer import compose
from repro.compose.config import ComposerConfig
from repro.compose.phases import PHASES, collect_phases, timed
from repro.engine import ChainGrower, compose_chain
from repro.literature.problems import all_problems


def _sample_problems(count=5):
    return [problem.problem for problem in all_problems()[:count]]


class TestCompositionPhases:
    def test_buckets_use_known_names_and_nonnegative_times(self):
        for problem in _sample_problems():
            result = compose(problem)
            breakdown = result.phase_breakdown()
            assert breakdown, "a composition that attempts symbols fills buckets"
            assert set(breakdown) <= set(PHASES)
            assert all(seconds >= 0.0 for seconds in breakdown.values())
            assert result.phase_seconds == tuple(sorted(breakdown.items()))

    def test_eliminate_bucket_bounded_by_total_elapsed(self):
        for problem in _sample_problems():
            result = compose(problem)
            breakdown = result.phase_breakdown()
            assert breakdown.get("eliminate", 0.0) <= result.elapsed_seconds
            # The step buckets nest inside the eliminate bucket.
            steps = sum(
                breakdown.get(name, 0.0)
                for name in ("view_unfolding", "left_compose", "right_compose")
            )
            assert steps <= breakdown.get("eliminate", 0.0)

    def test_simplify_bucket_follows_the_config(self):
        problem = _sample_problems(1)[0]
        with_simplify = compose(problem, ComposerConfig())
        without = compose(problem, ComposerConfig(simplify_output=False))
        assert "simplify" in with_simplify.phase_breakdown()
        assert "simplify" not in without.phase_breakdown()

    def test_disabled_steps_produce_no_buckets(self):
        problem = _sample_problems(1)[0]
        crippled = ComposerConfig(
            enable_view_unfolding=False,
            enable_left_compose=False,
            enable_right_compose=False,
        )
        breakdown = compose(problem, crippled).phase_breakdown()
        for name in ("view_unfolding", "left_compose", "right_compose"):
            assert name not in breakdown


class TestChainHopTiming:
    def test_assembly_separated_from_composition(self):
        mappings = ChainGrower(seed=11, schema_size=3).grow_many(4)
        result = compose_chain(tuple(mappings))
        for hop in result.hops:
            assert hop.assembly_seconds >= 0.0
            assert hop.elapsed_seconds >= hop.assembly_seconds
            assert hop.compose_seconds == hop.elapsed_seconds - hop.assembly_seconds
            # The hop's phase view is the composition's.
            assert hop.phase_seconds == hop.result.phase_seconds
            assert dict(hop.phase_seconds).get("eliminate", 0.0) <= hop.compose_seconds


class TestPhaseCollector:
    def test_timed_is_a_noop_without_a_collection(self):
        with timed("normalize"):
            pass  # must not raise, must not record anywhere

    def test_collections_nest_per_thread(self):
        with collect_phases() as outer:
            with timed("eliminate"):
                with collect_phases() as inner:
                    with timed("normalize"):
                        pass
                assert "normalize" in inner
            assert "normalize" not in outer
            assert "eliminate" in outer
