"""Tests for ELIMINATE, COMPOSE, the configuration knobs and the result objects."""

import pytest

from repro.algebra.expressions import Projection, Relation, Selection, Union
from repro.algebra.conditions import equals_const
from repro.compose.composer import compose, compose_mappings
from repro.compose.config import ComposerConfig
from repro.compose.eliminate import eliminate
from repro.compose.result import EliminationMethod
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import CompositionError
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping
from repro.schema.signature import Signature

R, S, T = Relation("R", 2), Relation("S", 2), Relation("T", 2)


def chain_problem():
    return CompositionProblem(
        sigma1=Signature.from_arities({"R": 2}),
        sigma2=Signature.from_arities({"S": 2}),
        sigma3=Signature.from_arities({"T": 2}),
        sigma12=ConstraintSet([ContainmentConstraint(R, S)]),
        sigma23=ConstraintSet([ContainmentConstraint(S, T)]),
        name="chain",
    )


class TestEliminate:
    def test_not_mentioned_symbol_is_free(self):
        constraints = ConstraintSet([ContainmentConstraint(R, T)])
        result, outcome = eliminate(constraints, "S", 2)
        assert outcome.success
        assert outcome.method is EliminationMethod.NOT_MENTIONED
        assert result == constraints

    def test_view_unfolding_preferred(self):
        constraints = ConstraintSet(
            [EqualityConstraint(S, R), ContainmentConstraint(S, T)]
        )
        _, outcome = eliminate(constraints, "S", 2)
        assert outcome.method is EliminationMethod.VIEW_UNFOLDING

    def test_left_compose_when_unfolding_unavailable(self):
        constraints = ConstraintSet(
            [ContainmentConstraint(S, R), ContainmentConstraint(T, Union(S, T))]
        )
        _, outcome = eliminate(constraints, "S", 2)
        assert outcome.success
        assert outcome.method is EliminationMethod.LEFT_COMPOSE

    def test_right_compose_as_fallback(self):
        # Left compose fails (π(S) upper bound cannot be left-normalized from
        # the ∩ on the left), right compose succeeds.
        constraints = ConstraintSet(
            [ContainmentConstraint(R, S), ContainmentConstraint(S, T)]
        )
        config = ComposerConfig(enable_left_compose=False)
        _, outcome = eliminate(constraints, "S", 2, config)
        assert outcome.method is EliminationMethod.RIGHT_COMPOSE

    def test_failure_reports_reasons(self):
        constraints = ConstraintSet([EqualityConstraint(S, Union(S, R))])
        result, outcome = eliminate(constraints, "S", 2)
        assert not outcome.success
        assert outcome.method is EliminationMethod.FAILED
        assert result == constraints
        assert len(outcome.failure_reasons) == 3

    def test_disabled_steps_recorded(self):
        constraints = ConstraintSet([EqualityConstraint(S, R), ContainmentConstraint(S, T)])
        config = ComposerConfig(
            enable_view_unfolding=False,
            enable_left_compose=False,
            enable_right_compose=False,
        )
        _, outcome = eliminate(constraints, "S", 2, config)
        assert not outcome.success
        assert "view unfolding disabled" in outcome.failure_reasons

    def test_blowup_guard(self):
        # A tiny blow-up factor forces every candidate to be rejected.
        constraints = ConstraintSet(
            [
                ContainmentConstraint(Projection(S, (0, 1)), Union(R, Union(R, T))),
                ContainmentConstraint(R, S),
                ContainmentConstraint(S, Union(T, Union(R, T))),
            ]
        )
        config = ComposerConfig(max_blowup_factor=0.01)
        _, outcome = eliminate(constraints, "S", 2, config)
        assert not outcome.success
        assert outcome.blowup_aborted


class TestCompose:
    def test_simple_chain(self):
        result = compose(chain_problem())
        assert result.is_complete
        assert result.eliminated_symbols == ("S",)
        assert result.constraints == ConstraintSet([ContainmentConstraint(R, T)])
        assert result.fraction_eliminated == 1.0
        assert result.outcome_for("S").success

    def test_result_statistics(self):
        result = compose(chain_problem())
        assert result.input_operator_count == 0
        assert result.output_operator_count == 0
        assert result.blowup_ratio() <= 1.0
        assert result.methods_used() == {EliminationMethod.RIGHT_COMPOSE: 1} or result.methods_used()
        assert "eliminated" in result.summary()

    def test_outcome_for_unknown_symbol_raises(self):
        result = compose(chain_problem())
        with pytest.raises(CompositionError):
            result.outcome_for("Z")

    def test_to_mapping_complete(self):
        result = compose(chain_problem())
        mapping = result.to_mapping()
        assert set(mapping.input_signature.names()) == {"R"}
        assert set(mapping.output_signature.names()) == {"T"}

    def test_partial_result_keeps_symbols(self):
        sigma12 = ConstraintSet([EqualityConstraint(S, Union(S, R))])
        problem = CompositionProblem(
            sigma1=Signature.from_arities({"R": 2}),
            sigma2=Signature.from_arities({"S": 2}),
            sigma3=Signature.from_arities({"T": 2}),
            sigma12=sigma12,
            sigma23=ConstraintSet([ContainmentConstraint(S, T)]),
        )
        result = compose(problem)
        assert not result.is_complete
        assert result.remaining_symbols == ("S",)
        with pytest.raises(CompositionError):
            result.to_mapping()
        residual = result.to_mapping_with_residue()
        assert "S" in residual.input_signature

    def test_symbol_order_respected(self):
        problem = CompositionProblem(
            sigma1=Signature.from_arities({"R": 2}),
            sigma2=Signature.from_arities({"S": 2, "W": 2}),
            sigma3=Signature.from_arities({"T": 2}),
            sigma12=ConstraintSet(
                [ContainmentConstraint(R, S), ContainmentConstraint(R, Relation("W", 2))]
            ),
            sigma23=ConstraintSet([ContainmentConstraint(S, T)]),
        )
        result = compose(problem, ComposerConfig(symbol_order=["W", "S"]))
        assert result.attempted_symbols == ("W", "S")

    def test_symbol_order_with_unknown_symbol_rejected(self):
        with pytest.raises(CompositionError):
            compose(chain_problem(), ComposerConfig(symbol_order=["Nope"]))

    def test_symbol_order_missing_symbols_appended(self):
        problem = CompositionProblem(
            sigma1=Signature.from_arities({"R": 2}),
            sigma2=Signature.from_arities({"S": 2, "W": 2}),
            sigma3=Signature.from_arities({"T": 2}),
            sigma12=ConstraintSet([ContainmentConstraint(R, S)]),
            sigma23=ConstraintSet([ContainmentConstraint(S, T)]),
        )
        result = compose(problem, ComposerConfig(symbol_order=["W"]))
        assert set(result.attempted_symbols) == {"W", "S"}

    def test_compose_mappings_wrapper(self):
        m12 = Mapping(
            Signature.from_arities({"R": 2}),
            Signature.from_arities({"S": 2}),
            ConstraintSet([ContainmentConstraint(R, S)]),
        )
        m23 = Mapping(
            Signature.from_arities({"S": 2}),
            Signature.from_arities({"T": 2}),
            ConstraintSet([ContainmentConstraint(S, T)]),
        )
        result = compose_mappings(m12, m23)
        assert result.is_complete

    def test_movies_example_output_shape(self):
        movies = Signature.from_arities({"Movies": 6})
        five_star = Signature.from_arities({"FiveStarMovies": 3})
        split = Signature.from_arities({"Names": 2, "Years": 2})
        m12 = Mapping(
            movies,
            five_star,
            ConstraintSet(
                [
                    ContainmentConstraint(
                        Projection(Selection(Relation("Movies", 6), equals_const(3, 5)), (0, 1, 2)),
                        Relation("FiveStarMovies", 3),
                    )
                ]
            ),
        )
        m23 = Mapping(
            five_star,
            split,
            ConstraintSet(
                [
                    ContainmentConstraint(Projection(Relation("FiveStarMovies", 3), (0, 1)), Relation("Names", 2)),
                    ContainmentConstraint(Projection(Relation("FiveStarMovies", 3), (0, 2)), Relation("Years", 2)),
                ]
            ),
        )
        result = compose_mappings(m12, m23)
        assert result.is_complete
        assert result.output_signature.names() == ("Movies", "Names", "Years")


class TestComposerConfig:
    def test_factory_methods(self):
        assert ComposerConfig.no_view_unfolding().enable_view_unfolding is False
        assert ComposerConfig.no_right_compose().enable_right_compose is False
        assert ComposerConfig.no_left_compose().enable_left_compose is False
        assert ComposerConfig.default().enable_view_unfolding is True

    def test_with_registry_and_order(self):
        from repro.operators.registry import OperatorRegistry

        registry = OperatorRegistry()
        config = ComposerConfig().with_registry(registry).with_symbol_order(["A"])
        assert config.registry is registry
        assert config.symbol_order == ("A",)

    def test_registry_default_is_fresh_copy(self):
        first = ComposerConfig()
        second = ComposerConfig()
        assert first.registry is not second.registry
