"""Tests for the canonical Skolem form and the deskolemization procedure."""

from repro.algebra.conditions import equals, equals_const
from repro.algebra.expressions import (
    CrossProduct,
    Intersection,
    Projection,
    Relation,
    Selection,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.compose.deskolemize import deskolemize
from repro.compose.skolem import ColumnRef, canonicalize_skolemized
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet

R = Relation("R", 1)
S = Relation("S", 2)
T = Relation("T", 2)
U = Relation("U", 2)
F = SkolemFunction("f", (0,))
G = SkolemFunction("g", (0,))


class TestCanonicalization:
    def test_skolem_free_expression(self):
        form = canonicalize_skolemized(S)
        assert form.base == S
        assert form.skolems == ()
        assert form.output == (ColumnRef("base", 0), ColumnRef("base", 1))

    def test_single_application(self):
        form = canonicalize_skolemized(SkolemApplication(R, F))
        assert form.base == R
        assert len(form.skolems) == 1
        assert form.output[-1] == ColumnRef("skolem", 0)

    def test_projection_over_skolem(self):
        expression = Projection(SkolemApplication(R, F), (1, 0))
        form = canonicalize_skolemized(expression)
        assert form.output == (ColumnRef("skolem", 0), ColumnRef("base", 0))

    def test_selection_on_base_columns_pushes_down(self):
        expression = Selection(SkolemApplication(S, SkolemFunction("f", (0, 1))), equals_const(0, 3))
        form = canonicalize_skolemized(expression)
        assert isinstance(form.base, Selection)
        assert form.base.child == S

    def test_selection_on_skolem_column_fails(self):
        expression = Selection(SkolemApplication(R, F), equals(0, 1))
        assert canonicalize_skolemized(expression) is None

    def test_cross_product_combines(self):
        expression = CrossProduct(SkolemApplication(R, F), T)
        form = canonicalize_skolemized(expression)
        assert form is not None
        assert form.base == CrossProduct(R, T)
        assert len(form.skolems) == 1
        # Output: base0, skolem0, base1, base2.
        assert form.output[1] == ColumnRef("skolem", 0)
        assert form.output[2] == ColumnRef("base", 1)

    def test_skolem_under_union_fails(self):
        expression = Union(SkolemApplication(R, F), SkolemApplication(R, G))
        assert canonicalize_skolemized(expression) is None

    def test_nested_skolem_dependency_fails(self):
        inner = SkolemApplication(R, F)
        outer = SkolemApplication(inner, SkolemFunction("g", (1,)))  # depends on f's column
        assert canonicalize_skolemized(outer) is None

    def test_chained_independent_skolems_ok(self):
        inner = SkolemApplication(R, F)
        outer = SkolemApplication(inner, SkolemFunction("g", (0,)))
        form = canonicalize_skolemized(outer)
        assert form is not None
        assert len(form.skolems) == 2


class TestDeskolemize:
    def test_passthrough_without_skolems(self):
        constraints = ConstraintSet([ContainmentConstraint(S, T)])
        assert deskolemize(constraints) == constraints

    def test_single_constraint_existential_reading(self):
        constraints = ConstraintSet([ContainmentConstraint(SkolemApplication(R, F), S)])
        result = deskolemize(constraints)
        assert result == ConstraintSet([ContainmentConstraint(R, Projection(S, (0,)))])

    def test_group_combination(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(SkolemApplication(R, F), S),
                ContainmentConstraint(SkolemApplication(R, F), T),
            ]
        )
        result = deskolemize(constraints)
        assert result == ConstraintSet(
            [ContainmentConstraint(R, Projection(Intersection(S, T), (0,)))]
        )

    def test_dropped_skolem_columns_become_plain_projection(self):
        expression = Projection(SkolemApplication(R, F), (0,))
        constraints = ConstraintSet([ContainmentConstraint(expression, R)])
        result = deskolemize(constraints)
        # π_0(f(R)) is just R once the unused Skolem column is dropped.
        assert result == ConstraintSet([ContainmentConstraint(R, R)])

    def test_repeated_function_in_one_constraint_fails(self):
        left = CrossProduct(SkolemApplication(R, F), SkolemApplication(R, F))
        constraints = ConstraintSet([ContainmentConstraint(left, Relation("W", 4))])
        assert deskolemize(constraints) is None

    def test_same_function_different_bases_fails(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(SkolemApplication(R, F), S),
                ContainmentConstraint(SkolemApplication(Projection(T, (0,)), F), S),
            ]
        )
        assert deskolemize(constraints) is None

    def test_partial_dependency_fails(self):
        # The Skolem function only depends on column 0 of a binary base: the
        # per-tuple existential reading would be unsound, so refuse.
        constraints = ConstraintSet(
            [ContainmentConstraint(SkolemApplication(S, SkolemFunction("f", (0,))), Relation("W", 3))]
        )
        assert deskolemize(constraints) is None

    def test_skolem_on_rhs_fails(self):
        constraints = ConstraintSet(
            [ContainmentConstraint(S, SkolemApplication(R, F))]
        )
        assert deskolemize(constraints) is None

    def test_equality_with_skolem_fails(self):
        constraints = ConstraintSet(
            [EqualityConstraint(SkolemApplication(R, F), S)]
        )
        assert deskolemize(constraints) is None

    def test_permuted_output_uses_lift(self):
        # π_{1,0}(f(R)) ⊆ S: the Skolem column comes first in the output, so the
        # lifted translation (via D^n) is required; the result must be Skolem-free.
        expression = Projection(SkolemApplication(R, F), (1, 0))
        constraints = ConstraintSet([ContainmentConstraint(expression, S)])
        result = deskolemize(constraints)
        assert result is not None
        assert not result.contains_skolem()

    def test_semantics_of_existential_reading(self):
        """Deskolemization output must hold exactly when some Skolem interpretation works."""
        from repro.algebra.evaluation import SkolemInterpretation
        from repro.constraints.satisfaction import satisfies_all
        from repro.schema.instance import Instance

        constraints = ConstraintSet([ContainmentConstraint(SkolemApplication(R, F), S)])
        deskolemized = deskolemize(constraints)

        witness = Instance({"R": {(1,), (2,)}, "S": {(1, 5), (2, 6)}})
        assert satisfies_all(witness, deskolemized)
        skolems = SkolemInterpretation(functions={"f": lambda args: 5 if args[0] == 1 else 6})
        assert satisfies_all(witness, constraints, skolems=skolems)

        no_witness = Instance({"R": {(1,), (2,)}, "S": {(1, 5)}})
        assert not satisfies_all(no_witness, deskolemized)
