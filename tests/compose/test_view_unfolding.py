"""Tests for the view-unfolding step (Section 3.2)."""

from repro.algebra.conditions import equals_const
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Projection,
    Relation,
    Selection,
    Union,
)
from repro.compose.view_unfolding import unfold_view
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet

R1, R2 = Relation("R1", 2), Relation("R2", 2)
R3 = Relation("R3", 4)
S = Relation("S", 4)
T1, T2, T3 = Relation("T1", 2), Relation("T2", 4), Relation("T3", 4)


class TestUnfoldView:
    def test_no_defining_equality_fails(self):
        constraints = ConstraintSet([ContainmentConstraint(Relation("R", 2), Relation("S", 2))])
        assert unfold_view(constraints, "S") is None

    def test_self_referential_equality_is_not_a_definition(self):
        s = Relation("S", 2)
        constraints = ConstraintSet([EqualityConstraint(s, Union(s, Relation("R", 2)))])
        assert unfold_view(constraints, "S") is None

    def test_simple_definition(self):
        s, r, t = Relation("S", 2), Relation("R", 2), Relation("T", 2)
        constraints = ConstraintSet(
            [EqualityConstraint(s, r), ContainmentConstraint(s, t)]
        )
        unfolded = unfold_view(constraints, "S")
        assert unfolded == ConstraintSet([ContainmentConstraint(r, t)])

    def test_definition_on_the_right_side(self):
        s, r, t = Relation("S", 2), Relation("R", 2), Relation("T", 2)
        constraints = ConstraintSet(
            [EqualityConstraint(r, s), ContainmentConstraint(s, t)]
        )
        unfolded = unfold_view(constraints, "S")
        assert unfolded == ConstraintSet([ContainmentConstraint(r, t)])

    def test_paper_example_5(self):
        """The paper's Example 5: unfolding succeeds where left/right compose cannot."""
        constraints = ConstraintSet(
            [
                EqualityConstraint(S, CrossProduct(R1, R2)),
                ContainmentConstraint(Projection(Difference(R3, S), (0, 1)), T1),
                ContainmentConstraint(T2, Difference(T3, Selection(S, equals_const(0, "c")))),
            ]
        )
        unfolded = unfold_view(constraints, "S")
        assert unfolded is not None
        assert not unfolded.mentions("S")
        expected_first = ContainmentConstraint(
            Projection(Difference(R3, CrossProduct(R1, R2)), (0, 1)), T1
        )
        expected_second = ContainmentConstraint(
            T2, Difference(T3, Selection(CrossProduct(R1, R2), equals_const(0, "c")))
        )
        assert expected_first in unfolded
        assert expected_second in unfolded

    def test_substitutes_into_non_monotone_and_unknown_positions(self):
        """Because the definition is an equality, monotonicity is irrelevant."""
        s, r, t = Relation("S", 2), Relation("R", 2), Relation("T", 2)
        constraints = ConstraintSet(
            [
                EqualityConstraint(s, r),
                ContainmentConstraint(Difference(t, s), t),
            ]
        )
        unfolded = unfold_view(constraints, "S")
        assert ContainmentConstraint(Difference(t, r), t) in unfolded

    def test_unrelated_symbol_untouched(self):
        s, r, t = Relation("S", 2), Relation("R", 2), Relation("T", 2)
        constraints = ConstraintSet([EqualityConstraint(s, r), ContainmentConstraint(r, t)])
        unfolded = unfold_view(constraints, "S")
        assert ContainmentConstraint(r, t) in unfolded
        assert len(unfolded) == 1
