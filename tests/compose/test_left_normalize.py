"""Tests for left-normalization (Section 3.4.1)."""

from repro.algebra.conditions import equals_const
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Intersection,
    Projection,
    Relation,
    Selection,
    Union,
)
from repro.compose.left_normalize import left_normalize, rewrite_left_once
from repro.compose.normalize_context import NormalizationContext
from repro.constraints.constraint import ContainmentConstraint
from repro.constraints.constraint_set import ConstraintSet

R, S, T, U = Relation("R", 2), Relation("S", 2), Relation("T", 2), Relation("U", 1)


def context(arity=2):
    return NormalizationContext(symbol="S", symbol_arity=arity)


class TestRewriteRules:
    def test_union_on_left_splits(self):
        rewritten = rewrite_left_once(Union(S, R), T, "S", context())
        assert rewritten == [(S, T), (R, T)]

    def test_difference_on_left(self):
        rewritten = rewrite_left_once(Difference(R, S), T, "S", context())
        assert rewritten == [(R, Union(S, T))]

    def test_projection_on_left_places_columns(self):
        rewritten = rewrite_left_once(Projection(S, (0,)), U, "S", context())
        assert len(rewritten) == 1
        new_left, new_right = rewritten[0]
        assert new_left == S
        assert new_right.arity == 2

    def test_projection_with_duplicate_indices_fails(self):
        assert rewrite_left_once(Projection(S, (0, 0)), Relation("W", 2), "S", context()) is None

    def test_selection_on_left(self):
        rewritten = rewrite_left_once(Selection(S, equals_const(0, 1)), T, "S", context())
        [(new_left, new_right)] = rewritten
        assert new_left == S
        assert new_right == Union(T, Difference(Domain(2), Selection(Domain(2), equals_const(0, 1))))

    def test_intersection_on_left_fails(self):
        assert rewrite_left_once(Intersection(R, S), T, "S", context()) is None

    def test_product_on_left_fails(self):
        assert rewrite_left_once(CrossProduct(U, S), Relation("W", 3), "S", context()) is None

    def test_unknown_operator_without_registry_fails(self):
        from repro.algebra.expressions import SemiJoin
        from repro.algebra.conditions import equals

        assert rewrite_left_once(SemiJoin(S, R, equals(0, 2)), T, "S", context()) is None


class TestLeftNormalize:
    def test_paper_example_7(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(Difference(R, S), T),
                ContainmentConstraint(Projection(S, (0,)), U),
            ]
        )
        normalized = left_normalize(constraints, "S", context())
        assert normalized is not None
        result, xi = normalized
        assert xi.left == S
        # ξ's upper bound comes from the projection constraint: S ⊆ place(U).
        assert xi in result
        # The difference constraint was rewritten to R ⊆ S ∪ T.
        assert ContainmentConstraint(R, Union(S, T)) in result

    def test_paper_example_8_intersection_fails(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(Intersection(R, S), T),
                ContainmentConstraint(Projection(S, (0,)), U),
            ]
        )
        assert left_normalize(constraints, "S", context()) is None

    def test_paper_example_9_adds_trivial_bound(self):
        constraints = ConstraintSet(
            [
                ContainmentConstraint(Intersection(R, T), S),
                ContainmentConstraint(U, Projection(S, (0,))),
            ]
        )
        normalized = left_normalize(constraints, "S", context())
        assert normalized is not None
        result, xi = normalized
        assert xi == ContainmentConstraint(S, Domain(2))

    def test_multiple_upper_bounds_collapse_to_intersection(self):
        constraints = ConstraintSet(
            [ContainmentConstraint(S, R), ContainmentConstraint(S, T)]
        )
        result, xi = left_normalize(constraints, "S", context())
        assert xi.right == Intersection(R, T)
        assert len(result) == 1

    def test_constraints_not_mentioning_symbol_pass_through(self):
        unrelated = ContainmentConstraint(R, T)
        constraints = ConstraintSet([unrelated, ContainmentConstraint(S, R)])
        result, _ = left_normalize(constraints, "S", context())
        assert unrelated in result

    def test_nested_rewrites_terminate(self):
        nested = ContainmentConstraint(Union(Projection(CrossProduct(S, U), (0, 1)), R), T)
        constraints = ConstraintSet([nested])
        # π over a product containing S: the projection rule fires, then the
        # product blocks normalization — must fail cleanly, not loop.
        assert left_normalize(constraints, "S", context()) is None
