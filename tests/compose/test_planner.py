"""Unit tests for the cost-guided elimination planner.

Partitioning, the cost model, the bounded backtracking retry loop, the new
config knob / fingerprint coverage, and the mention-index short-circuits in
``eliminate`` (which must keep outcomes byte-identical to the full attempts).
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import Projection, Relation, Union
from repro.compose import (
    ComposerConfig,
    CompositionPlan,
    build_plan,
    compose,
    compose_component,
    eliminate,
    order_symbols,
    plan_compose,
    symbol_cost,
)
from repro.compose import planner as planner_module
from repro.compose.result import EliminationMethod, EliminationOutcome
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import CompositionError
from repro.mapping.composition_problem import CompositionProblem
from repro.schema.signature import Signature


def _rel(name, arity=1):
    return Relation(name, arity)


def _problem(sigma1, sigma2, sigma3, sigma12, sigma23):
    return CompositionProblem(
        sigma1=Signature.from_arities(sigma1),
        sigma2=Signature.from_arities(sigma2),
        sigma3=Signature.from_arities(sigma3),
        sigma12=ConstraintSet(sigma12),
        sigma23=ConstraintSet(sigma23),
    )


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


def test_build_plan_splits_connected_components():
    # σ2 = {A, B, C, D}: A and B co-occur, C is alone, D is never mentioned.
    constraints = ConstraintSet(
        [
            ContainmentConstraint(_rel("R1"), _rel("A")),
            ContainmentConstraint(_rel("A"), _rel("B")),
            EqualityConstraint(_rel("C"), _rel("R2")),
            ContainmentConstraint(_rel("R3"), _rel("S3")),  # no σ2 symbol
        ]
    )
    plan = build_plan(constraints, ("A", "B", "C", "D"))
    assert isinstance(plan, CompositionPlan)
    assert [component.symbols for component in plan.components] == [("A", "B"), ("C",)]
    assert [component.constraint_indices for component in plan.components] == [
        (0, 1),
        (2,),
    ]
    assert plan.free_symbols == ("D",)
    assert plan.untouched_indices == (3,)
    # Component baselines are component-local operator counts.
    assert plan.components[0].operator_count == sum(
        constraints[i].operator_count() for i in (0, 1)
    )


def test_build_plan_transitive_co_occurrence_merges_components():
    # A-B co-occur and B-C co-occur: one component {A, B, C}.
    constraints = ConstraintSet(
        [
            ContainmentConstraint(_rel("A"), _rel("B")),
            ContainmentConstraint(_rel("B"), _rel("C")),
        ]
    )
    plan = build_plan(constraints, ("A", "B", "C"))
    assert len(plan.components) == 1
    assert plan.components[0].symbols == ("A", "B", "C")
    assert plan.untouched_indices == ()


def test_build_plan_all_singletons():
    constraints = ConstraintSet(
        [
            EqualityConstraint(_rel("A"), _rel("R1")),
            EqualityConstraint(_rel("B"), _rel("R2")),
            EqualityConstraint(_rel("C"), _rel("R3")),
        ]
    )
    plan = build_plan(constraints, ("A", "B", "C"))
    assert [component.symbols for component in plan.components] == [
        ("A",),
        ("B",),
        ("C",),
    ]


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


def test_symbol_cost_tiers():
    constraints = ConstraintSet(
        [
            EqualityConstraint(_rel("A"), _rel("R1")),  # defines A: tier 0
            ContainmentConstraint(_rel("B"), _rel("R2")),  # plain mention: tier 1
            # C on both sides of one constraint: tier 2 (LC/RC dead on arrival).
            ContainmentConstraint(_rel("C"), Union(_rel("C"), _rel("R3"))),
        ]
    )
    assert symbol_cost(constraints, "A")[0] == 0
    assert symbol_cost(constraints, "B")[0] == 1
    assert symbol_cost(constraints, "C")[0] == 2
    assert order_symbols(constraints, ("C", "B", "A")) == ("A", "B", "C")


def test_symbol_cost_breaks_ties_on_mentions_then_operators():
    constraints = ConstraintSet(
        [
            ContainmentConstraint(_rel("A"), _rel("R1")),
            ContainmentConstraint(_rel("A"), _rel("R2")),
            ContainmentConstraint(Projection(Union(_rel("B"), _rel("R3")), (0,)), _rel("R4")),
        ]
    )
    # Same tier; B has fewer mentioning constraints than A.
    assert symbol_cost(constraints, "B")[1] < symbol_cost(constraints, "A")[1]
    assert order_symbols(constraints, ("A", "B")) == ("B", "A")


# ---------------------------------------------------------------------------
# Bounded backtracking
# ---------------------------------------------------------------------------


def test_compose_component_requeues_failed_symbols(monkeypatch):
    """A symbol that fails while another is present succeeds on retry."""
    constraints = ConstraintSet(
        [
            EqualityConstraint(_rel("A"), _rel("R1")),
            ContainmentConstraint(_rel("B"), _rel("R2")),
        ]
    )
    state = {"A_gone": False}

    def fake_eliminate(current, symbol, arity, config, baseline_operator_count=None):
        if symbol == "A":
            state["A_gone"] = True
            return current, EliminationOutcome(
                symbol="A", success=True, method=EliminationMethod.VIEW_UNFOLDING
            )
        if not state["A_gone"]:
            return current, EliminationOutcome(
                symbol=symbol, success=False, method=EliminationMethod.FAILED
            )
        return current, EliminationOutcome(
            symbol=symbol, success=True, method=EliminationMethod.LEFT_COMPOSE
        )

    monkeypatch.setattr(planner_module, "eliminate", fake_eliminate)
    # Force B first so its first attempt fails while A is still present.
    monkeypatch.setattr(
        planner_module, "order_symbols", lambda _constraints, symbols: tuple(symbols)
    )
    result = compose_component(constraints, ("B", "A"), (1, 1), ComposerConfig())
    assert result.order == ("B", "A")
    assert result.reorderings == 1  # B retried once, after A
    assert len(result.outcomes) == 2  # final outcome per symbol, no duplicates
    assert all(outcome.success for outcome in result.outcomes)


def test_compose_component_stops_when_no_progress():
    # One symbol that can never be eliminated: exactly one pass, no retries.
    constraints = ConstraintSet(
        [ContainmentConstraint(_rel("A"), Union(_rel("A"), _rel("R1")))]
    )
    result = compose_component(constraints, ("A",), (1,), ComposerConfig())
    assert result.reorderings == 0
    assert [outcome.success for outcome in result.outcomes] == [False]


# ---------------------------------------------------------------------------
# plan_compose and the compose() integration
# ---------------------------------------------------------------------------


def test_plan_compose_matches_fixed_on_simple_views():
    problem = _problem(
        {"R1": 1, "R2": 1},
        {"A": 1, "B": 1},
        {"S1": 1, "S2": 1},
        [
            EqualityConstraint(_rel("A"), _rel("R1")),
            EqualityConstraint(_rel("B"), _rel("R2")),
        ],
        [
            ContainmentConstraint(_rel("A"), _rel("S1")),
            ContainmentConstraint(_rel("B"), _rel("S2")),
        ],
    )
    fixed = compose(problem, ComposerConfig())
    planned = compose(problem, ComposerConfig.cost_guided())
    assert planned.is_complete and fixed.is_complete
    assert planned.constraints == fixed.constraints
    assert planned.components == 2
    assert planned.plan == (("A",), ("B",))
    assert planned.reorderings == 0
    assert "planner" in planned.phase_breakdown()
    # The fixed path records no planner statistics.
    assert fixed.components == 0 and fixed.plan == ()


def test_plan_compose_free_symbols_and_untouched_constraints():
    problem = _problem(
        {"R1": 1, "R2": 1},
        {"A": 1, "Z": 1},  # Z is mentioned nowhere
        {"S1": 1},
        [
            EqualityConstraint(_rel("A"), _rel("R1")),
            ContainmentConstraint(_rel("R1"), _rel("R2")),  # mentions no σ2 symbol
        ],
        [ContainmentConstraint(_rel("A"), _rel("S1"))],
    )
    planned = plan_compose(problem, ComposerConfig.cost_guided())
    assert planned.is_complete
    assert planned.outcome_for("Z").method == EliminationMethod.NOT_MENTIONED
    assert planned.components == 1
    # The σ1-only constraint is carried into the output verbatim.
    assert ContainmentConstraint(_rel("R1"), _rel("R2")) in planned.constraints


def test_plan_compose_via_thread_executor_is_identical():
    from concurrent.futures import ThreadPoolExecutor

    problem = _problem(
        {"R1": 1, "R2": 1},
        {"A": 1, "B": 1},
        {"S1": 1, "S2": 1},
        [
            EqualityConstraint(_rel("A"), _rel("R1")),
            EqualityConstraint(_rel("B"), _rel("R2")),
        ],
        [
            ContainmentConstraint(_rel("A"), _rel("S1")),
            ContainmentConstraint(_rel("B"), _rel("S2")),
        ],
    )
    serial = plan_compose(problem, ComposerConfig.cost_guided())
    with ThreadPoolExecutor(max_workers=2) as executor:
        parallel = plan_compose(problem, ComposerConfig.cost_guided(), executor=executor)
    assert parallel.constraints.to_text() == serial.constraints.to_text()
    assert parallel.plan == serial.plan
    assert parallel.remaining_symbols == serial.remaining_symbols


# ---------------------------------------------------------------------------
# Config knob
# ---------------------------------------------------------------------------


def test_elimination_order_is_validated():
    with pytest.raises(CompositionError):
        ComposerConfig(elimination_order="greedy")


def test_cost_mode_rejects_explicit_symbol_order():
    with pytest.raises(CompositionError):
        ComposerConfig(elimination_order="cost", symbol_order=("A",))


def test_fingerprint_covers_elimination_order():
    assert ComposerConfig().fingerprint() != ComposerConfig.cost_guided().fingerprint()


# ---------------------------------------------------------------------------
# eliminate() mention-index short-circuits
# ---------------------------------------------------------------------------


def test_eliminate_skips_view_unfolding_without_an_equality(monkeypatch):
    import importlib

    eliminate_module = importlib.import_module("repro.compose.eliminate")

    def explode(*args, **kwargs):  # pragma: no cover - the test fails if hit
        raise AssertionError("unfold_view should have been skipped")

    monkeypatch.setattr(eliminate_module, "unfold_view", explode)
    constraints = ConstraintSet([ContainmentConstraint(_rel("A"), _rel("R1"))])
    result, outcome = eliminate(constraints, "A", 1)
    # Left compose still eliminates A (bound dropped); the skipped unfolding
    # recorded the same reason the full attempt would have.
    assert outcome.success
    assert "no defining equality for view unfolding" in outcome.failure_reasons


def test_eliminate_skips_both_compose_steps_on_both_sides_mentions(monkeypatch):
    import importlib

    eliminate_module = importlib.import_module("repro.compose.eliminate")

    def explode(*args, **kwargs):  # pragma: no cover - the test fails if hit
        raise AssertionError("compose steps should have been skipped")

    monkeypatch.setattr(eliminate_module, "left_compose", explode)
    monkeypatch.setattr(eliminate_module, "right_compose", explode)
    constraints = ConstraintSet(
        [ContainmentConstraint(_rel("A"), Union(_rel("A"), _rel("R1")))]
    )
    result, outcome = eliminate(constraints, "A", 1)
    assert not outcome.success
    assert outcome.failure_reasons == (
        "no defining equality for view unfolding",
        "left compose failed",
        "right compose failed",
    )
    assert result is constraints


def test_eliminate_short_circuit_reasons_match_full_attempts():
    """The skip path must reproduce the unshortened outcome verbatim."""
    constraints = ConstraintSet(
        [ContainmentConstraint(_rel("A"), Union(_rel("A"), _rel("R1")))]
    )
    _, outcome = eliminate(constraints, "A", 1)
    # Reproduce without the pre-checks by calling the steps directly.
    from repro.compose.left_compose import left_compose
    from repro.compose.right_compose import right_compose
    from repro.compose.view_unfolding import unfold_view

    assert unfold_view(constraints, "A") is None
    assert left_compose(constraints, "A", 1) is None
    assert right_compose(constraints, "A", 1) is None
    assert outcome.failure_reasons == (
        "no defining equality for view unfolding",
        "left compose failed",
        "right compose failed",
    )
