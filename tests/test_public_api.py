"""Tests of the package-level public API surface."""

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_key_entry_points_exposed(self):
        assert callable(repro.compose)
        assert callable(repro.compose_mappings)
        assert callable(repro.parse_constraint)
        assert callable(repro.evaluate)
        assert callable(repro.satisfies_all)

    def test_subpackages_importable(self):
        import repro.algebra
        import repro.compose
        import repro.constraints
        import repro.evolution
        import repro.experiments
        import repro.literature
        import repro.mapping
        import repro.operators
        import repro.schema
        import repro.textio

        assert repro.experiments.run_figure2 is not None
        assert repro.literature.all_problems is not None

    def test_docstring_quickstart_runs(self):
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
