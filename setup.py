"""Setup shim for environments without PEP 660 editable-install support.

The canonical metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``python setup.py develop``) on offline machines with older setuptools/wheel
tooling.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Implementing Mapping Composition' (VLDB 2006): an "
        "algebra-based mapping composition engine with a schema evolution "
        "simulator and experiment harness."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro=repro.__main__:main"]},
)
