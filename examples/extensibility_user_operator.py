"""Extensibility: teaching the composition algorithm a user-defined operator.

The paper's algorithm is extensible "by allowing additional information to be
added separately for each operator in the form of information about
monotonicity and rules for normalization and denormalization".  This example
defines a brand-new operator — ``Audit``, which tags every tuple of its input
with a constant audit label (arity n+1) — and registers three pieces of
knowledge about it:

* it is monotone in its only argument,
* the ∅-identity ``Audit(∅) = ∅``,
* a right-normalization rule ``E1 ⊆ Audit(E2) ↔ π_{0..n-1}(σ_{n=label}(E1)) ⊆ E2``
  (sound because every Audit tuple carries the label in its last column).

With those rules registered, COMPOSE eliminates an intermediate symbol that
occurs under ``Audit`` — without them, the symbol is (correctly) kept.

Run with::

    python examples/extensibility_user_operator.py
"""

from dataclasses import dataclass
from typing import Tuple

from repro import (
    ComposerConfig,
    CompositionProblem,
    ConstraintSet,
    ContainmentConstraint,
    Relation,
    Signature,
    compose,
    default_registry,
)
from repro.algebra.builders import project
from repro.algebra.conditions import equals_const
from repro.algebra.expressions import Empty, Expression, Selection
from repro.operators.monotonicity import Monotonicity


# ---------------------------------------------------------------------------
# 1. The user-defined operator
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Audit(Expression):
    """``Audit_label(E)``: append a constant audit label to every tuple of E."""

    child: Expression
    label: str

    operator_name = "audit"

    @property
    def arity(self) -> int:
        return self.child.arity + 1

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        return Audit(children[0], self.label)

    def __str__(self) -> str:
        return f"audit[{self.label}]({self.child})"


# ---------------------------------------------------------------------------
# 2. Operator knowledge, registered through the public registry API
# ---------------------------------------------------------------------------


def audit_monotonicity(expression, child_values):
    """Audit preserves the monotonicity of its argument."""
    return child_values[0]


def audit_simplify(expression):
    """Audit(∅) = ∅."""
    if isinstance(expression.child, Empty):
        return Empty(expression.arity)
    return None


def audit_right_normalize(left, right, symbol, context):
    """E1 ⊆ Audit_label(E2)  ↔  π_{0..n-1}(σ_{#n = label}(E1)) ⊆ E2  plus a label check.

    A tuple is in Audit_label(E2) iff its last column equals the label and the
    rest is in E2, so the containment splits into a label condition on E1 and
    a containment of the unlabelled prefix.
    """
    assert isinstance(right, Audit)
    n = right.child.arity
    prefix = project(Selection(left, equals_const(n, right.label)), range(n))
    label_check = ContainmentConstraint(left, Selection(left, equals_const(n, right.label)))
    return [(prefix, right.child), (label_check.left, label_check.right)]


def registry_with_audit():
    registry = default_registry()
    registry.register_operator(
        Audit,
        monotonicity_rule=audit_monotonicity,
        right_normalization_rule=audit_right_normalize,
        simplification_rule=audit_simplify,
        description="audit: append a constant label column",
    )
    return registry


# ---------------------------------------------------------------------------
# 3. A composition problem whose intermediate symbol hides under Audit
# ---------------------------------------------------------------------------


def build_problem() -> CompositionProblem:
    source = Relation("Source", 2)
    staging = Relation("Staging", 2)
    audited = Relation("AuditedTarget", 3)
    loaded = Relation("LoadedRows", 3)
    sigma12 = ConstraintSet([ContainmentConstraint(source, staging)])
    sigma23 = ConstraintSet(
        [
            # The staging table flows, audited, into the target...
            ContainmentConstraint(Audit(staging, "loaded"), audited),
            # ...and every already-loaded row must stem from the staging table
            # (an occurrence of the symbol *under* the user-defined operator on
            # the right-hand side, which only the registered normalization rule
            # can invert).
            ContainmentConstraint(loaded, Audit(staging, "loaded")),
        ]
    )
    return CompositionProblem(
        sigma1=Signature.from_arities({"Source": 2}),
        sigma2=Signature.from_arities({"Staging": 2}),
        sigma3=Signature.from_arities({"AuditedTarget": 3, "LoadedRows": 3}),
        sigma12=sigma12,
        sigma23=sigma23,
        name="audit_extensibility",
    )


def main() -> None:
    problem = build_problem()

    print("without Audit knowledge (operator unknown to the algorithm):")
    plain = compose(problem, ComposerConfig.default())
    print("  eliminated:", plain.eliminated_symbols or "(none)")
    print("  kept:      ", plain.remaining_symbols or "(none)")

    print("\nwith Audit registered (monotonicity + ∅-identity + right-normalization):")
    config = ComposerConfig.default().with_registry(registry_with_audit())
    extended = compose(problem, config)
    print("  eliminated:", extended.eliminated_symbols or "(none)")
    for constraint in extended.constraints:
        print("    " + str(constraint))

    assert "Staging" in extended.eliminated_symbols
    assert "Staging" not in plain.eliminated_symbols
    print("\nthe registered rules let COMPOSE substitute straight through the user-defined operator")


if __name__ == "__main__":
    main()
