"""Catalog + service walkthrough: register → compose → restart → warm recompose.

The library becomes a *system* when its state outlives the process: this
example registers an evolving mapping chain in a disk-backed
:class:`~repro.catalog.MappingCatalog`, serves compositions through a
:class:`~repro.service.CompositionService` (cold — every hop computed, every
checkpoint written through to disk), then tears the whole serving stack down
and rebuilds it on the same catalog root.  A fresh catalog + service instance
is exactly what a new process constructs after a restart, and the warm
recomposition replays **zero** hops: the persistent checkpoint store answers
the deepest prefix probe from disk, byte-identically.

The final act is the schema-evolution loop: one more edit is registered as a
new catalog *version* (history is never overwritten), and recomposing the
grown chain replays only the new hop.

Run with::

    python examples/catalog_service.py [catalog_root]

Without an argument a temporary directory is used (and cleaned up); pass a
path to keep the catalog around and re-run the example against it.
"""

import sys
import tempfile
import time

from repro.catalog import MappingCatalog
from repro.engine import ChainGrower
from repro.service import CompositionService, ServiceConfig


def serve_once(root, name="history"):
    """One serving-stack lifetime: construct on ``root``, compose, tear down."""
    catalog = MappingCatalog(root)
    with CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0)) as service:
        started = time.perf_counter()
        result = service.compose_catalog("chain", name)
        elapsed = time.perf_counter() - started
    return catalog, result, elapsed


def main() -> None:
    if len(sys.argv) > 1:
        run(sys.argv[1])
    else:
        with tempfile.TemporaryDirectory() as root:
            run(root)


def run(root: str) -> None:
    # -- 1. register: an evolving chain becomes a named catalog entry -----------
    grower = ChainGrower(seed=2006, schema_size=10)
    mappings = grower.grow_many(12)
    catalog = MappingCatalog(root)
    entry = catalog.put_chain("history", mappings, description="12 simulated edits")
    print(f"registered {entry.kind}/{entry.name} v{entry.version} "
          f"({len(mappings)} mappings, fingerprint {entry.fingerprint[:12]})")

    # -- 2. compose (cold): the service computes every hop ----------------------
    _, cold, cold_seconds = serve_once(root)
    print(f"\ncold serve : {cold_seconds * 1000:7.1f} ms, "
          f"reused {cold.reused_hops}/{len(cold.hops)} hops")
    print(f"             checkpoints on disk: {catalog.checkpoints.disk_entries()}")

    # -- 3. restart: a brand-new stack on the same root --------------------------
    # (A new MappingCatalog + CompositionService is exactly what a restarted
    # process builds; nothing in-memory survives from step 2.)
    _, warm, warm_seconds = serve_once(root)
    identical = warm.constraints.to_text() == cold.constraints.to_text()
    print(f"warm serve : {warm_seconds * 1000:7.1f} ms, "
          f"reused {warm.reused_hops}/{len(warm.hops)} hops "
          f"({cold_seconds / warm_seconds:.1f}x faster, "
          f"byte-identical: {identical})")

    # -- 4. evolve: one more edit is a new catalog version -----------------------
    extended = mappings + grower.grow_many(1)
    entry = catalog.put_chain("history", extended)
    print(f"\nregistered one more edit as {entry.kind}/{entry.name} v{entry.version} "
          f"(v1 history is preserved: "
          f"{[e.version for e in catalog.versions('chain', 'history')]})")

    _, grown, grown_seconds = serve_once(root)
    print(f"grown serve: {grown_seconds * 1000:7.1f} ms, "
          f"reused {grown.reused_hops}/{len(grown.hops)} hops "
          f"(only the new hop was composed)")


if __name__ == "__main__":
    main()
