"""Replication + unattended failover: primary → follower → kill → *election*.

The catalog became durable in PR 5 and shareable in PR 6; PR 8 made it
survivable with an operator in the loop (`POST /admin/promote`).  This
walkthrough removes the operator.  A primary service takes writes while a
:class:`~repro.service.ReplicationFollower` tails its append-only journal
and mirrors every entry into a second catalog root; both processes run a
:class:`~repro.service.LeaderElector` over a shared lease directory.  A
:class:`~repro.service.RouterHTTPServer` fronts both.  Then the primary is
torn down without ceremony — and *nobody promotes anything*: the candidate
elector notices the silence, wins the ``leader`` lease race, self-promotes
with a fresh fencing epoch, the router observes the role flip, and writes
flow again.  The promoted catalog holds every acknowledged version,
fingerprint-verified — and the old primary's root is fenced, so a zombie
restart cannot split-brain the store.

Run with::

    python examples/replicated_failover.py [work_dir]

Without an argument a temporary directory is used (and cleaned up); pass a
path to inspect the two catalog roots, the election directory, and the
primary's journal segments afterwards.
"""

import json
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.catalog import MappingCatalog
from repro.engine import ChainGrower
from repro.exceptions import StaleEpochError
from repro.service import (
    CompositionService,
    LeaderElector,
    ReplicationFollower,
    RouterHTTPServer,
    ServiceConfig,
    ServiceHTTPServer,
    open_source,
)
from repro.textio.records import chain_to_text


def post(url: str, body: bytes = b"") -> tuple[int, str, dict]:
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read().decode(), dict(response.headers)


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode())


def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def main() -> None:
    if len(sys.argv) > 1:
        run(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory() as root:
            run(Path(root))


def run(work_dir: Path) -> None:
    primary_root = work_dir / "primary"
    follower_root = work_dir / "replica"
    election_dir = work_dir / "election"

    # -- 1. the primary: a serving stack that holds the leader lease -----------
    primary_catalog = MappingCatalog(primary_root)
    primary_elector = LeaderElector(
        primary_catalog, election_dir=election_dir, election_timeout_seconds=1.0
    ).start()
    primary_service = CompositionService(
        primary_catalog, ServiceConfig(micro_batch_wait_seconds=0.0)
    )
    primary_service.start()
    primary_server = ServiceHTTPServer(
        primary_service, port=0, elector=primary_elector
    )
    primary_server.start()
    primary_base = "http://{}:{}".format(*primary_server.address)
    print(f"primary   serving {primary_root} at {primary_base}")

    # -- 2. the candidate: a follower plus an elector watching the primary -----
    # open_source() accepts the primary's catalog root (reads segments off a
    # shared disk) or its HTTP base URL.  The root path is what makes step 5
    # work: the journal outlives the primary process, so the self-promotion's
    # final catch-up can drain it after the kill.
    follower_catalog = MappingCatalog(follower_root)
    follower = ReplicationFollower(
        follower_catalog, open_source(str(primary_root)), poll_interval_seconds=0.05
    ).start()
    candidate_elector = LeaderElector(
        follower_catalog,
        follower=follower,
        election_dir=election_dir,
        source_root=primary_root,
        primary_url=primary_base,
        election_timeout_seconds=1.0,
        health_timeout_seconds=0.5,
    ).start()
    follower_service = CompositionService(
        follower_catalog, ServiceConfig(micro_batch_wait_seconds=0.0)
    )
    follower_service.start()
    follower_server = ServiceHTTPServer(
        follower_service, port=0, follower=follower, elector=candidate_elector
    )
    follower_server.start()
    follower_base = "http://{}:{}".format(*follower_server.address)
    print(f"candidate mirroring into {follower_root} at {follower_base}")

    # -- 3. the router: health-routed front tier over both ----------------------
    router = RouterHTTPServer(
        [primary_base, follower_base], port=0, health_interval_seconds=0.1
    ).start()
    router_base = "http://{}:{}".format(*router.address)
    print(f"router    fronting both at {router_base}")
    print(f"election  shared lease directory {election_dir}\n")

    try:
        # -- 4. write load through the router ----------------------------------
        grower = ChainGrower(seed=2006, schema_size=8)
        hops = tuple(grower.grow_many(10))
        chains = [hops[i : i + 4] for i in range(6)]
        acknowledged = []
        for index in range(3):
            name = f"edit-{index}"
            status, _, headers = post(
                f"{router_base}/compose?store={name}",
                chain_to_text(chains[index]).encode(),
            )
            assert status == 200
            acknowledged.append(name)
            print(f"write {name!r} -> {headers['x-repro-backend']} (the primary)")

        wait_for(lambda: follower.status()["lag_entries"] == 0)
        print(f"replication lag drained: {follower.status()['entries_applied']} "
              "entries mirrored")
        election = get_json(f"{follower_base}/healthz")["election"]
        print(f"candidate elector: role={election['role']!r}, "
              f"elections so far: {election['elections_started']}\n")

        # -- 5. the primary dies: no cleanup, no flush, and NO operator ---------
        print("tearing the primary down without ceremony...")
        primary_server.stop()
        primary_service.stop()
        primary_elector.stop()

        # Writes have no backend until the election resolves: 503 + Retry-After.
        try:
            post(f"{router_base}/compose?store=during-outage",
                 chain_to_text(chains[3]).encode())
        except urllib.error.HTTPError as exc:
            print(f"write during outage -> {exc.code}, "
                  f"Retry-After: {exc.headers['Retry-After']}s")

        # -- 6. the candidate self-promotes: nobody calls /admin/promote --------
        assert wait_for(
            lambda: get_json(f"{follower_base}/healthz")
            .get("election", {})
            .get("role")
            == "leader"
        ), "the candidate never won the election"
        health = get_json(f"{follower_base}/healthz")
        print(f"candidate won the leader lease and self-promoted: "
              f"role={health['role']!r}, fencing epoch {health['epoch']}")

        wait_for(lambda: any(
            b["role"] == "primary" and b["healthy"] and b["url"] == follower_base
            for b in get_json(f"{router_base}/router/status")["backends"]
        ))

        # -- 7. writes flow again, into the self-promoted replica ---------------
        for index in range(3, 6):
            name = f"edit-{index}"
            status, _, headers = post(
                f"{router_base}/compose?store={name}",
                chain_to_text(chains[index]).encode(),
            )
            assert status == 200
            acknowledged.append(name)
            print(f"write {name!r} -> {headers['x-repro-backend']} "
                  f"(epoch {headers['x-repro-epoch']})")

        table = get_json(f"{router_base}/router/status")
        print(f"\nrouter observed {table['failovers_observed']} failover(s)")

        # -- 8. the books balance: every acknowledged write survived ------------
        promoted = MappingCatalog(follower_root)
        stored = set(promoted.names("mapping"))
        assert all(name in stored for name in acknowledged)
        assert all(promoted.verify("mapping", name) for name in acknowledged)
        print(f"all {len(acknowledged)} acknowledged writes present and "
              "fingerprint-verified in the promoted catalog")

        # -- 9. the zombie: the old root is fenced ------------------------------
        zombie = MappingCatalog(primary_root)
        try:
            zombie.put_mapping("split-brain", chains[0][0])
            raise AssertionError("the fenced ex-primary accepted a write")
        except StaleEpochError as exc:
            print(f"resurrected ex-primary refused: {exc}")
    finally:
        router.close()
        follower_server.stop()
        candidate_elector.stop()
        if not follower.promoted:
            follower.stop()
        follower_service.stop()


if __name__ == "__main__":
    main()
