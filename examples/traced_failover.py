"""Distributed tracing through a failover: one write, one tree, three processes.

PR 9 made failover unattended; this walkthrough makes it *legible*.  Three
real processes — a primary, a follower tailing its journal, and a router
fronting both — each sink their spans into their own JSONL file
(``REPRO_TRACE_LOG``).  Writes flow through the router, the primary is
SIGKILLed mid-story, the follower is promoted, and then the punchline: the
three sinks are merged with :func:`repro.obs.merge_spans` and an
acknowledged write's *single* trace tree is printed — router relay, primary
ingress, journal append, and the follower's apply, stitched across process
boundaries by trace headers and journal stamps.

Run with::

    python examples/traced_failover.py [work_dir]

Without an argument a temporary directory is used (and cleaned up); pass a
path to keep the trace sinks for your own ``repro trace`` experiments.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro import obs

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")

_PRIMARY = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import CompositionService, ServiceConfig, ServiceHTTPServer

catalog = MappingCatalog(sys.argv[1])
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_FOLLOWER = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import (
    CompositionService, ReplicationFollower, ServiceConfig, ServiceHTTPServer,
    open_source,
)

catalog = MappingCatalog(sys.argv[1])
follower = ReplicationFollower(
    catalog, open_source(sys.argv[2]), poll_interval_seconds=0.05
).start()
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0, follower=follower)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_ROUTER = """
import sys, time
from repro.service import RouterHTTPServer

router = RouterHTTPServer(
    sys.argv[1:], port=0, health_interval_seconds=0.1, health_timeout_seconds=1.0
).start()
print(f"ready {router.address[1]}", flush=True)
while True:
    time.sleep(1)
"""


def spawn(code: str, *args: str, service: str, sink: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env[obs.SERVICE_ENV_VAR] = service
    env[obs.LOG_ENV_VAR] = str(sink)
    proc = subprocess.Popen(
        [sys.executable, "-c", code, *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline()
    assert line.startswith("ready "), f"{service} did not come up: {line!r}"
    port = int(line.split()[1])
    print(f"{service:<8s} up at http://127.0.0.1:{port}  (sink: {sink.name})")
    return proc, f"http://127.0.0.1:{port}"


def post(url: str, body: bytes = b"") -> tuple[int, dict]:
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=30) as response:
        response.read()
        return response.status, dict(response.headers)


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode())


def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def main() -> None:
    if len(sys.argv) > 1:
        run(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory() as root:
            run(Path(root))


def run(work_dir: Path) -> None:
    from repro.engine import ChainGrower
    from repro.textio.records import chain_to_text

    sinks = {role: work_dir / f"trace-{role}.jsonl" for role in
             ("primary", "follower", "router")}
    procs = []
    try:
        # -- 1. three processes, three sinks --------------------------------
        primary, primary_base = spawn(
            _PRIMARY, str(work_dir / "primary"),
            service="primary", sink=sinks["primary"],
        )
        procs.append(primary)
        follower, follower_base = spawn(
            _FOLLOWER, str(work_dir / "replica"), str(work_dir / "primary"),
            service="follower", sink=sinks["follower"],
        )
        procs.append(follower)
        router, router_base = spawn(
            _ROUTER, primary_base, follower_base,
            service="router", sink=sinks["router"],
        )
        procs.append(router)
        print()

        # -- 2. writes through the router; the response names the trace ----
        grower = ChainGrower(seed=2006, schema_size=8)
        hops = tuple(grower.grow_many(8))
        traced = {}
        for index in range(3):
            name = f"edit-{index}"
            status, headers = post(
                f"{router_base}/compose?store={name}",
                chain_to_text(hops[index : index + 4]).encode(),
            )
            assert status == 200
            traced[name] = headers[obs.TRACE_ID_HEADER]
            print(f"write {name!r} acknowledged — trace {traced[name][:12]}…")

        # Let the follower mirror every journal entry (its apply spans are
        # the cross-process leaves of the trees we are about to print).
        wait_for(
            lambda: get_json(f"{follower_base}/healthz")
            .get("replication", {}).get("lag_entries") == 0
        )

        # -- 3. SIGKILL the primary; promote the follower -------------------
        print("\nSIGKILLing the primary...")
        primary.kill()
        primary.wait(timeout=30)
        status, _ = post(f"{follower_base}/admin/promote")
        assert status == 200
        print("follower promoted; router will observe the role flip")

        # -- 4. merge the three sinks into one tree per trace ---------------
        spans = obs.load_spans([str(path) for path in sinks.values()])
        traces = obs.merge_spans(spans)
        name, trace_id = next(iter(traced.items()))
        print(f"\nthe acknowledged write {name!r}, reassembled from "
              f"{len(sinks)} sinks:\n")
        print(obs.format_trace(trace_id, traces[trace_id]))

        problems = obs.verify(
            {tid: traces[tid] for tid in traced.values() if tid in traces},
            require=["router.request", "http.request",
                     "journal.append", "replica.apply"],
        )
        assert not problems, problems
        print("\nevery acknowledged write has a complete, orphan-free tree "
              "spanning all three processes")
        print(f"(try: repro trace {' '.join(str(p) for p in sinks.values())})")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.communicate()


if __name__ == "__main__":
    main()
