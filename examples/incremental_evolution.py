"""Incremental recomposition: an edit-replay session over an evolving chain.

The paper's motivating scenario is schema evolution: a designer applies edit
after edit, and after every edit the end-to-end mapping from the original
schema to the current one is recomposed.  Recomposing from scratch costs
O(n²) total hops over an n-edit sequence; the incremental engine records a
checkpoint per hop (keyed by content fingerprints) and replays only the hops
at or after the first change, so the same session is near-linear — with
byte-identical outputs.

This example drives an :class:`~repro.engine.incremental.EvolutionSession`
through a sequence of simulator-generated edits, then edits a mapping in the
middle of the chain, and compares the replay counts and wall-clock against
from-scratch recomposition.

Run with::

    python examples/incremental_evolution.py [num_edits] [schema_size]
"""

import sys
import time

from repro.engine import ChainGrower, EvolutionSession, compose_chain


def main() -> None:
    num_edits = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    schema_size = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    grower = ChainGrower(seed=2006, schema_size=schema_size)
    mappings = grower.grow_many(num_edits + 1)

    # -- incremental: one session, one recomposition per edit -------------------
    started = time.perf_counter()
    session = EvolutionSession(mappings[:1])
    for mapping in mappings[1:]:
        session.append(mapping)
    incremental_seconds = time.perf_counter() - started

    print(f"edit-replay session over {num_edits} edits "
          f"(schema of {schema_size} relations):")
    for event in session.events[1:]:
        print(f"  {event.kind:>6s} -> chain of {event.chain_length:2d}, "
              f"replayed {event.replayed_hops}/{event.total_hops} hops "
              f"in {event.elapsed_seconds * 1000:6.1f} ms")
    print(session.summary())

    # -- the same edits, recomposed from scratch each time -----------------------
    started = time.perf_counter()
    scratch_results = [
        compose_chain(tuple(mappings[: k + 1])) for k in range(1, num_edits + 1)
    ]
    from_scratch_seconds = time.perf_counter() - started

    final = session.result
    assert final.constraints.to_text() == scratch_results[-1].constraints.to_text()
    print(f"\nincremental: {incremental_seconds * 1000:7.1f} ms   "
          f"from scratch: {from_scratch_seconds * 1000:7.1f} ms   "
          f"speedup: {from_scratch_seconds / incremental_seconds:.1f}x "
          f"(outputs byte-identical)")

    # -- edit one mapping in the middle: only the suffix is replayed --------------
    index = num_edits // 2
    old = session.mappings[index]
    from repro.constraints.constraint_set import ConstraintSet
    from repro.mapping.mapping import Mapping

    reordered = list(old.constraints)
    reordered = reordered[1:] + reordered[:1]
    session.edit(index, Mapping(
        old.input_signature, old.output_signature, ConstraintSet(reordered)
    ))
    event = session.events[-1]
    print(f"\nediting mapping #{index} replayed only the suffix: "
          f"{event.replayed_hops}/{event.total_hops} hops "
          f"({event.reused_hops} reused)")

    print("\nengine statistics:")
    for name, stats in session.composer.stats().items():
        interesting = {k: v for k, v in stats.items() if k in
                       ("hits", "misses", "entries", "hit_rate", "interned")}
        print(f"  {name}: " + ", ".join(f"{k}={v:g}" if not isinstance(v, float)
                                        else f"{k}={v:.2f}"
                                        for k, v in interesting.items()))


if __name__ == "__main__":
    main()
