"""Chained composition: folding a 5-hop schema-evolution history into one mapping.

A schema evolves through five versions — each hop applies one evolution
primitive (drop an attribute, add a defaulted column, partition horizontally,
take a subset, project a column away) and renames the surviving relations.
``compose_chain`` folds the five mappings through COMPOSE, threading residual
symbols forward, and yields a single mapping from version 1 to version 6.

The second half of the example runs a *batch* of randomized chain problems
through the :class:`BatchComposer` — the engine that powers the stress
benchmarks — and prints its aggregate report, including the shared
expression-cache statistics.

Run with::

    python examples/chained_composition.py
"""

from repro import (
    BatchComposer,
    ConstraintSet,
    Mapping,
    Signature,
    WorkloadConfig,
    compose_chain,
    generate_workload,
    parse_constraints,
)


def build_five_hop_history():
    """Five evolution steps over an ``Employees``/``Projects`` schema.

    Every hop consumes its whole input schema: evolved relations get new
    constraints, untouched ones are renamed with an equality — exactly the
    shape the engine's workload generator produces at scale.
    """
    versions = [
        Signature.from_arities({"Emp": 4, "Proj": 3}),
        Signature.from_arities({"Emp2": 3, "Proj2": 3}),
        Signature.from_arities({"Emp3": 4, "Proj3": 3}),
        Signature.from_arities({"EmpA": 4, "EmpB": 4, "Proj4": 3}),
        Signature.from_arities({"EmpA2": 4, "Proj5": 3}),
        Signature.from_arities({"EmpA3": 4, "Proj6": 2}),
    ]
    hop_constraints = [
        # Hop 1 — DA: drop Emp's 4th column; Proj is renamed.
        "project[0,1,2](Emp/4) = Emp2/3\nProj/3 = Proj2/3",
        # Hop 2 — Df: add a defaulted department column to Emp2.
        "(Emp2/3 x const(('sales'))) = Emp3/4\nProj2/3 = Proj3/3",
        # Hop 3 — Hf: partition Emp3 by the default column's value.
        "select[#3 = 'sales'](Emp3/4) = EmpA/4\n"
        "select[#3 = 'eng'](Emp3/4) = EmpB/4\nProj3/3 = Proj4/3",
        # Hop 4 — Sub/DR: keep a subset of EmpA, drop EmpB.
        "EmpA/4 <= EmpA2/4\nProj4/3 = Proj5/3",
        # Hop 5 — DA on Proj: drop the budget column; EmpA2 is renamed.
        "EmpA2/4 = EmpA3/4\nproject[0,1](Proj5/3) = Proj6/2",
    ]
    mappings = []
    for source, target, text in zip(versions, versions[1:], hop_constraints):
        mappings.append(
            Mapping(source, target, ConstraintSet(parse_constraints(text)))
        )
    return mappings


def main() -> None:
    mappings = build_five_hop_history()
    print(f"evolution history: {len(mappings)} hops")
    for index, mapping in enumerate(mappings):
        print(f"  hop {index}: {mapping}")

    result = compose_chain(mappings)
    print("\nchained composition:")
    print("  " + result.summary().replace("\n", "\n  "))
    print("\nfinal constraints (version 1 -> version 6):")
    for line in result.constraints.to_text().splitlines():
        print("  " + line)
    if result.is_complete:
        print("\ncomposed mapping:", result.to_mapping())

    # -- batch mode: many randomized chain problems through one engine -------
    workload = generate_workload(
        WorkloadConfig(num_problems=20, min_chain_length=5, max_chain_length=8, seed=42)
    )
    report = BatchComposer().run_chains(workload)
    print("\nbatch of", len(workload), "randomized 5-8 hop problems:")
    print("  " + report.summary().replace("\n", "\n  "))
    print(f"  mean fraction eliminated: {report.mean_fraction_eliminated():.0%}")


if __name__ == "__main__":
    main()
