"""Quickstart: the paper's Example 1 (the Movies schema editor).

A designer starts from ``Movies(mid, name, year, rating, genre, theater)``,
keeps only 5-star movies in ``FiveStarMovies(mid, name, year)``, and then
splits that table into ``Names(mid, name)`` and ``Years(mid, year)``.  The
two editing steps yield two mappings; composing them produces a direct mapping
from ``Movies`` to ``Names``/``Years``, with the intermediate table gone.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ComposerConfig,
    ConstraintSet,
    Mapping,
    Signature,
    compose_mappings,
    parse_constraint,
)


def build_first_edit() -> Mapping:
    """Movies -> FiveStarMovies: keep only the 5-star movies (paper constraint (1))."""
    movies = Signature.from_arities({"Movies": 6})
    five_star = Signature.from_arities({"FiveStarMovies": 3})
    # Column order of Movies: mid=0, name=1, year=2, rating=3, genre=4, theater=5.
    constraint = parse_constraint(
        "project[0,1,2](select[#3 = 5](Movies/6)) <= FiveStarMovies/3"
    )
    return Mapping(movies, five_star, ConstraintSet([constraint]))


def build_second_edit() -> Mapping:
    """FiveStarMovies -> Names, Years: split the table (paper constraint (2))."""
    five_star = Signature.from_arities({"FiveStarMovies": 3})
    split = Signature.from_arities({"Names": 2, "Years": 2})
    constraints = ConstraintSet(
        [
            parse_constraint("project[0,1](FiveStarMovies/3) <= Names/2"),
            parse_constraint("project[0,2](FiveStarMovies/3) <= Years/2"),
        ]
    )
    return Mapping(five_star, split, constraints)


def main() -> None:
    m12 = build_first_edit()
    m23 = build_second_edit()

    print("Mapping 1 (Movies -> FiveStarMovies):")
    print("  " + m12.constraints.to_text())
    print("Mapping 2 (FiveStarMovies -> Names, Years):")
    for line in m23.constraints.to_text().splitlines():
        print("  " + line)

    result = compose_mappings(m12, m23, ComposerConfig.default())

    print("\nComposition result:")
    print("  complete:", result.is_complete)
    print("  eliminated:", ", ".join(result.eliminated_symbols))
    for line in result.constraints.to_text().splitlines():
        print("  " + line)
    print("\n" + result.summary())

    # The composed mapping is a first-class object: it can be inverted, have
    # its size measured, or be serialized to the plain-text task format.
    composed = result.to_mapping()
    print("\ncomposed mapping:", composed)


if __name__ == "__main__":
    main()
