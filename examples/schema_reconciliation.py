"""Schema reconciliation: two designers independently evolve the same schema.

The original schema σ1 evolves into σ2 (designer A) and σ3 (designer B).  To
merge the two results we need a mapping *between σ2 and σ3*; it is obtained by
composing the inverse of the σ1→σ2 mapping with the σ1→σ3 mapping, i.e. by
eliminating the original schema's symbols — the reconciliation scenario of the
paper's Figures 6 and 7.

Run with::

    python examples/schema_reconciliation.py [schema_size] [num_edits]
"""

import sys

from repro import ComposerConfig
from repro.evolution import SimulatorConfig, run_reconciliation_scenario


def main() -> None:
    schema_size = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    num_edits = int(sys.argv[2]) if len(sys.argv) > 2 else 25

    record, result = run_reconciliation_scenario(
        schema_size=schema_size,
        num_edits=num_edits,
        seed=55,
        simulator_config=SimulatorConfig.no_keys(),
        composer_config=ComposerConfig.default(),
    )

    print(f"original schema size: {record.schema_size} relations")
    print(f"edits per designer:   {record.num_edits}")
    print(f"designer A mapping fully composed: {record.branch_a_complete}")
    print(f"designer B mapping fully composed: {record.branch_b_complete}")
    print()
    print(f"reconciliation eliminated {record.eliminated_symbols}/{record.attempted_symbols} "
          f"original-schema symbols ({record.fraction_eliminated:.0%}) "
          f"in {record.duration_seconds * 1000:.1f} ms")

    if result.remaining_symbols:
        print("symbols that could not be eliminated:", ", ".join(result.remaining_symbols))
    print()
    print("a few constraints of the reconciled (A ↔ B) mapping:")
    for constraint in list(result.constraints)[:5]:
        print("  " + str(constraint))
    if len(result.constraints) > 5:
        print(f"  ... and {len(result.constraints) - 5} more")


if __name__ == "__main__":
    main()
