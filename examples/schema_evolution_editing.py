"""Schema editing scenario: a designer applies a long sequence of edits.

This example drives the schema-evolution simulator of Section 4.1: starting
from a random schema, it applies a sequence of weighted random primitives
(add/drop attribute, horizontal/vertical partitioning, ...) and composes the
accumulated mapping with each edit's mapping, exactly like the paper's
schema-editing study.  At the end it prints per-primitive success rates — a
single-run, text-mode version of Figure 2.

Run with::

    python examples/schema_evolution_editing.py [num_edits] [schema_size]
"""

import sys

from repro import ComposerConfig
from repro.evolution import EventVector, SimulatorConfig, run_editing_scenario


def main() -> None:
    num_edits = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    schema_size = int(sys.argv[2]) if len(sys.argv) > 2 else 15

    result = run_editing_scenario(
        schema_size=schema_size,
        num_edits=num_edits,
        seed=2006,
        simulator_config=SimulatorConfig.no_keys(),
        composer_config=ComposerConfig.default(),
        event_vector=EventVector.default(),
    )

    print(f"applied {num_edits} edits to a schema of {schema_size} relations")
    print(f"total composition time: {result.total_duration() * 1000:.1f} ms")
    print(f"overall fraction of symbols eliminated: {result.total_fraction_eliminated():.0%}")
    print(f"accumulated mapping: {len(result.constraints)} constraints, "
          f"{result.constraints.operator_count()} operators")
    if result.leftover_symbols:
        print("symbols kept as second-order leftovers:", ", ".join(result.leftover_symbols))
    else:
        print("every intermediate symbol was eliminated")

    print("\nper-primitive elimination success (cf. paper Figure 2):")
    fractions = result.fraction_eliminated_by_primitive()
    times = result.time_per_edit_by_primitive()
    for primitive in sorted(fractions):
        print(
            f"  {primitive:>4s}: {fractions[primitive]:6.0%}   "
            f"mean time {1000 * times[primitive]:6.2f} ms"
        )

    print("\nfirst few constraints of the final Movies-era mapping:")
    for constraint in list(result.constraints)[:5]:
        print("  " + str(constraint))


if __name__ == "__main__":
    main()
