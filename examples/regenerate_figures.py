"""Regenerate every table/figure of the paper's evaluation section as text tables.

This is the "one command" entry point for the reproduction: it runs the
literature study and the drivers for Figures 2-7 on a configurable workload
and prints the paper-style tables.

Run with::

    python examples/regenerate_figures.py             # scaled-down workload (~1-2 min)
    python examples/regenerate_figures.py --medium    # medium workload (~5-10 min)
    python examples/regenerate_figures.py --paper     # paper-scale parameters (slow)
"""

import sys
import time

from repro.experiments import (
    run_editing_study,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_literature_study,
)


def main() -> None:
    mode = "small"
    if "--paper" in sys.argv:
        mode = "paper"
    elif "--medium" in sys.argv:
        mode = "medium"

    if mode == "paper":
        editing = dict(schema_size=30, num_edits=100, runs=100)
        fig5 = dict(proportions=[i / 100 for i in range(0, 21, 2)], schema_size=30, num_edits=100, runs=20)
        fig6 = dict(schema_sizes=list(range(10, 101, 10)), num_edits=100, tasks_per_point=20)
        fig7 = dict(edit_counts=list(range(10, 211, 20)), schema_size=30, tasks_per_point=20)
    elif mode == "medium":
        editing = dict(schema_size=20, num_edits=40, runs=5)
        fig5 = dict(proportions=[0.0, 0.05, 0.10, 0.15, 0.20], schema_size=20, num_edits=40, runs=3)
        fig6 = dict(schema_sizes=[10, 20, 30, 40, 60], num_edits=40, tasks_per_point=3)
        fig7 = dict(edit_counts=[10, 30, 60, 90, 120], schema_size=20, tasks_per_point=3)
    else:
        editing = dict(schema_size=15, num_edits=25, runs=3)
        fig5 = dict(proportions=[0.0, 0.1, 0.2], schema_size=15, num_edits=25, runs=2)
        fig6 = dict(schema_sizes=[10, 20, 30], num_edits=25, tasks_per_point=2)
        fig7 = dict(edit_counts=[10, 25, 50], schema_size=15, tasks_per_point=2)

    started = time.time()

    print("=" * 72)
    print("Literature composition problems (the paper's first data set)")
    print("=" * 72)
    print(run_literature_study().to_table())

    print()
    print("=" * 72)
    print(f"Schema-editing study (schema size {editing['schema_size']}, "
          f"{editing['num_edits']} edits, {editing['runs']} runs per configuration)")
    print("=" * 72)
    study = run_editing_study(seed=1, **editing)
    print(run_figure2(study=study).to_table())
    print()
    print(run_figure3(study=study).to_table())
    print()
    print(run_figure4(study=study).to_table())

    print()
    print(run_figure5(seed=1, **fig5).to_table())
    print()
    print(run_figure6(seed=1, **fig6).to_table())
    print()
    print(run_figure7(seed=1, **fig7).to_table())

    print()
    print(f"total time: {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
