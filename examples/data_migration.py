"""Data migration: using a composed mapping to check and migrate instances.

After composing the two editing steps of the Movies example, the resulting
mapping relates the *original* schema directly to the *final* schema.  This
example builds concrete database instances, uses the library's evaluator to
check which pairs of instances the composed mapping relates (``A |= Σ``), and
materializes a valid target instance from a source instance by evaluating the
source-side expressions of the composed constraints.

Run with::

    python examples/data_migration.py
"""

from repro import (
    ConstraintSet,
    Instance,
    Mapping,
    Signature,
    compose_mappings,
    evaluate,
    parse_constraint,
    parse_expression,
    satisfies_all,
)


def build_composed_mapping() -> Mapping:
    movies = Signature.from_arities({"Movies": 6})
    five_star = Signature.from_arities({"FiveStarMovies": 3})
    split = Signature.from_arities({"Names": 2, "Years": 2})
    m12 = Mapping(
        movies,
        five_star,
        ConstraintSet(
            [parse_constraint("project[0,1,2](select[#3 = 5](Movies/6)) <= FiveStarMovies/3")]
        ),
    )
    m23 = Mapping(
        five_star,
        split,
        ConstraintSet(
            [
                parse_constraint("project[0,1](FiveStarMovies/3) <= Names/2"),
                parse_constraint("project[0,2](FiveStarMovies/3) <= Years/2"),
            ]
        ),
    )
    result = compose_mappings(m12, m23)
    assert result.is_complete, "the Movies composition should eliminate FiveStarMovies"
    return result.to_mapping()


def main() -> None:
    composed = build_composed_mapping()
    print("composed mapping constraints:")
    for constraint in composed.constraints:
        print("  " + str(constraint))

    # A source instance: (mid, name, year, rating, genre, theater).
    source = Instance(
        {
            "Movies": {
                (1, "Heat", 1995, 5, "crime", "Odeon"),
                (2, "Clue", 1985, 4, "comedy", "Rex"),
                (3, "Arrival", 2016, 5, "scifi", "Lux"),
            }
        }
    )

    # Migrate: materialize each target relation by evaluating the corresponding
    # source-side query of the *original* editing steps (keep 5-star movies,
    # then split).  The point of the example is that the pair of instances this
    # produces is accepted by the *composed* mapping, i.e. composition preserved
    # the designer's intent.
    target = Instance(
        {
            "Names": evaluate(parse_expression("project[0,1](select[#3 = 5](Movies/6))"), source),
            "Years": evaluate(parse_expression("project[0,2](select[#3 = 5](Movies/6))"), source),
        }
    )
    print("\nmigrated target instance:")
    for name in ("Names", "Years"):
        print(f"  {name}: {sorted(target.relation(name))}")

    # The pair (source, target) must satisfy the composed mapping...
    combined = source.merged_with(target)
    print("\nsource+target satisfies the composed mapping:",
          satisfies_all(combined, composed.constraints))
    print("mapping.relates(source, target):", composed.relates(source, target))

    # ...while an empty target does not (the 5-star movies are missing).
    empty_target = Instance({"Names": set(), "Years": set()})
    print("mapping.relates(source, empty target):", composed.relates(source, empty_target))


if __name__ == "__main__":
    main()
